#include "env/env.h"

#include <algorithm>
#include <memory>
#include <stdexcept>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dag/generator.h"
#include "support/builders.h"

namespace spear {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

SchedulingEnv make_env(Dag dag, EnvOptions options = {}) {
  return SchedulingEnv(std::make_shared<Dag>(std::move(dag)), cap(), options);
}

TEST(Env, InitialReadySetIsSources) {
  auto env = make_env(testing::make_diamond(1, 2, 3, 4));
  ASSERT_EQ(env.ready().size(), 1u);
  EXPECT_EQ(env.ready()[0], 0);
  EXPECT_FALSE(env.done());
  EXPECT_EQ(env.now(), 0);
}

TEST(Env, SchedulingDoesNotAdvanceTime) {
  auto env = make_env(testing::make_independent(3, 5, ResourceVector{0.3, 0.3}));
  EXPECT_DOUBLE_EQ(env.step(0), 0.0);
  EXPECT_EQ(env.now(), 0);
  EXPECT_EQ(env.cluster().num_running(), 1u);
  EXPECT_EQ(env.ready().size(), 2u);
}

TEST(Env, ProcessCostsOneSlot) {
  auto env = make_env(testing::make_chain({2}));
  env.step(0);
  EXPECT_DOUBLE_EQ(env.step(SchedulingEnv::kProcessAction), -1.0);
  EXPECT_EQ(env.now(), 1);
  EXPECT_FALSE(env.done());
  EXPECT_DOUBLE_EQ(env.step(SchedulingEnv::kProcessAction), -1.0);
  EXPECT_TRUE(env.done());
  EXPECT_EQ(env.makespan(), 2);
}

TEST(Env, CompletionUnlocksChildren) {
  auto env = make_env(testing::make_chain({2, 3}));
  env.step(0);
  env.step(SchedulingEnv::kProcessAction);
  EXPECT_TRUE(env.ready().empty());  // child not ready yet
  env.step(SchedulingEnv::kProcessAction);
  ASSERT_EQ(env.ready().size(), 1u);
  EXPECT_EQ(env.ready()[0], 1);
}

TEST(Env, ProcessToNextFinishReturnsElapsedSlots) {
  auto env = make_env(testing::make_chain({7, 1}));
  env.step(0);
  EXPECT_DOUBLE_EQ(env.process_to_next_finish(), -7.0);
  EXPECT_EQ(env.now(), 7);
  ASSERT_EQ(env.ready().size(), 1u);
}

TEST(Env, TotalRewardEqualsNegativeMakespan) {
  Rng rng(5);
  DagGeneratorOptions options;
  options.num_tasks = 20;
  auto dag = generate_random_dag(options, rng);
  auto env = make_env(dag);
  double total = 0.0;
  while (!env.done()) {
    // Always schedule the first fitting ready task, else process.
    int action = SchedulingEnv::kProcessAction;
    for (std::size_t i = 0; i < env.ready().size(); ++i) {
      if (env.can_schedule(i)) {
        action = static_cast<int>(i);
        break;
      }
    }
    total += env.step(action);
  }
  EXPECT_DOUBLE_EQ(total, -static_cast<double>(env.makespan()));
}

TEST(Env, BacklogHoldsOverflowReadyTasks) {
  EnvOptions options;
  options.max_ready = 2;
  auto env = make_env(testing::make_independent(5, 3, ResourceVector{0.1, 0.1}),
                      options);
  EXPECT_EQ(env.ready().size(), 2u);
  EXPECT_EQ(env.backlog_size(), 3u);
  env.step(0);
  EXPECT_EQ(env.ready().size(), 2u);  // refilled from backlog
  EXPECT_EQ(env.backlog_size(), 2u);
}

TEST(Env, BacklogDrainsInFifoOrder) {
  EnvOptions options;
  options.max_ready = 1;
  auto env = make_env(testing::make_independent(3, 3, ResourceVector{0.1, 0.1}),
                      options);
  EXPECT_EQ(env.ready()[0], 0);
  env.step(0);
  EXPECT_EQ(env.ready()[0], 1);
  env.step(0);
  EXPECT_EQ(env.ready()[0], 2);
}

TEST(Env, CanScheduleChecksFit) {
  auto env = make_env(testing::make_independent(2, 3, ResourceVector{0.7, 0.7}));
  EXPECT_TRUE(env.can_schedule(0));
  env.step(0);
  EXPECT_FALSE(env.can_schedule(0));   // second 0.7 does not fit
  EXPECT_FALSE(env.can_schedule(99));  // out of range
}

TEST(Env, ValidActionsListsFitsAndProcess) {
  auto env = make_env(testing::make_independent(2, 3, ResourceVector{0.7, 0.7}));
  // Nothing running: both tasks individually fit, process is invalid.
  EXPECT_EQ(env.valid_actions(), (std::vector<int>{0, 1}));
  env.step(0);
  // One running, the other does not fit: only process.
  EXPECT_EQ(env.valid_actions(),
            std::vector<int>{SchedulingEnv::kProcessAction});
}

TEST(Env, InvalidScheduleFallsBackToProcess) {
  auto env = make_env(testing::make_independent(2, 3, ResourceVector{0.7, 0.7}));
  env.step(0);
  // Action 0 no longer fits; with a busy cluster it degrades to process.
  EXPECT_DOUBLE_EQ(env.step(0), -1.0);
  EXPECT_EQ(env.now(), 1);
}

TEST(Env, InvalidActionOnIdleClusterThrows) {
  auto env = make_env(testing::make_chain({2, 2}));
  EXPECT_THROW(env.step(SchedulingEnv::kProcessAction), std::logic_error);
  EXPECT_THROW(env.step(5), std::logic_error);
}

TEST(Env, StepAfterDoneThrows) {
  auto env = make_env(testing::make_chain({1}));
  env.step(0);
  env.step(SchedulingEnv::kProcessAction);
  ASSERT_TRUE(env.done());
  EXPECT_THROW(env.step(0), std::logic_error);
}

TEST(Env, MakespanBeforeDoneThrows) {
  auto env = make_env(testing::make_chain({2}));
  EXPECT_THROW(env.makespan(), std::logic_error);
}

TEST(Env, RejectsUnschedulableTask) {
  DagBuilder builder;
  builder.add_task(1, ResourceVector{1.5, 0.1});
  Dag dag = std::move(builder).build();
  EXPECT_THROW(make_env(dag), std::invalid_argument);
}

TEST(Env, RejectsNullDagAndZeroWindow) {
  EXPECT_THROW(SchedulingEnv(nullptr, cap()), std::invalid_argument);
  EnvOptions options;
  options.max_ready = 0;
  EXPECT_THROW(make_env(testing::make_chain({1}), options),
               std::invalid_argument);
}

TEST(Env, CopyIsIndependentSnapshot) {
  auto env = make_env(testing::make_independent(3, 4, ResourceVector{0.3, 0.3}));
  env.step(0);
  SchedulingEnv copy = env;
  copy.step(0);
  copy.process_to_next_finish();
  // Original unaffected.
  EXPECT_EQ(env.now(), 0);
  EXPECT_EQ(env.cluster().num_running(), 1u);
  EXPECT_EQ(copy.now(), 4);
}

TEST(Env, SharedFeaturesReused) {
  auto dag = std::make_shared<Dag>(testing::make_chain({1, 2}));
  auto features = std::make_shared<DagFeatures>(*dag);
  SchedulingEnv env(dag, cap(), {}, features);
  EXPECT_EQ(&env.features(), features.get());
}

TEST(Env, EpisodeEquivalenceSlotVsJumpProcessing) {
  // Following the same scheduling rule, slot-by-slot processing and
  // jump-to-completion processing must produce identical schedules.
  Rng rng(11);
  DagGeneratorOptions options;
  options.num_tasks = 25;
  auto dag = generate_random_dag(options, rng);

  auto run = [&](bool jump) {
    auto env = make_env(dag);
    while (!env.done()) {
      int action = SchedulingEnv::kProcessAction;
      for (std::size_t i = 0; i < env.ready().size(); ++i) {
        if (env.can_schedule(i)) {
          action = static_cast<int>(i);
          break;
        }
      }
      if (action == SchedulingEnv::kProcessAction && jump) {
        env.process_to_next_finish();
      } else {
        env.step(action);
      }
    }
    return env.makespan();
  };
  EXPECT_EQ(run(false), run(true));
}

// Property: random policies always terminate with a valid schedule.
class EnvRandomEpisodeTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EnvRandomEpisodeTest, RandomEpisodeYieldsValidSchedule) {
  Rng rng(GetParam());
  DagGeneratorOptions options;
  options.num_tasks = 30;
  auto dag = generate_random_dag(options, rng);
  auto env = make_env(dag);
  while (!env.done()) {
    const auto actions = env.valid_actions();
    ASSERT_FALSE(actions.empty());
    const auto pick = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::int64_t>(actions.size()) - 1));
    env.step(actions[pick]);
  }
  const Schedule& s = env.cluster().schedule();
  EXPECT_EQ(s.validate(dag, cap()), std::nullopt);
  EXPECT_EQ(s.makespan(dag), env.makespan());
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnvRandomEpisodeTest,
                         ::testing::Values(1, 2, 3, 7, 42, 1234));

}  // namespace
}  // namespace spear
