#include "dag/resource.h"

#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

namespace spear {
namespace {

TEST(ResourceVector, DefaultIsZeroTwoDims) {
  ResourceVector v;
  EXPECT_EQ(v.dims(), 2u);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 0.0);
}

TEST(ResourceVector, InitializerList) {
  ResourceVector v{0.5, 0.25, 0.1};
  EXPECT_EQ(v.dims(), 3u);
  EXPECT_DOUBLE_EQ(v[kCpu], 0.5);
  EXPECT_DOUBLE_EQ(v[kMem], 0.25);
  EXPECT_DOUBLE_EQ(v[2], 0.1);
}

TEST(ResourceVector, BadDimsThrow) {
  EXPECT_THROW(ResourceVector(0), std::invalid_argument);
  EXPECT_THROW(ResourceVector(9), std::invalid_argument);
  EXPECT_THROW((ResourceVector{1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0, 1.0}),
               std::invalid_argument);
}

TEST(ResourceVector, IndexOutOfRangeThrows) {
  ResourceVector v{1.0, 2.0};
  EXPECT_THROW(v[2], std::out_of_range);
  const ResourceVector& cv = v;
  EXPECT_THROW(cv[5], std::out_of_range);
}

TEST(ResourceVector, AddSubtract) {
  ResourceVector a{0.5, 0.25};
  ResourceVector b{0.25, 0.25};
  const auto sum = a + b;
  EXPECT_DOUBLE_EQ(sum[0], 0.75);
  EXPECT_DOUBLE_EQ(sum[1], 0.5);
  const auto diff = a - b;
  EXPECT_DOUBLE_EQ(diff[0], 0.25);
  EXPECT_DOUBLE_EQ(diff[1], 0.0);
}

TEST(ResourceVector, DimensionMismatchThrows) {
  ResourceVector a{1.0, 1.0};
  ResourceVector b{1.0, 1.0, 1.0};
  EXPECT_THROW(a += b, std::invalid_argument);
  EXPECT_THROW(a.dot(b), std::invalid_argument);
  EXPECT_THROW(a.fits_within(b), std::invalid_argument);
}

TEST(ResourceVector, Equality) {
  EXPECT_TRUE((ResourceVector{1.0, 2.0}) == (ResourceVector{1.0, 2.0}));
  EXPECT_FALSE((ResourceVector{1.0, 2.0}) == (ResourceVector{1.0, 2.1}));
  EXPECT_FALSE((ResourceVector{1.0}) == (ResourceVector{1.0, 0.0}));
}

TEST(ResourceVector, Scaled) {
  const auto v = ResourceVector{0.5, 0.2}.scaled(2.0);
  EXPECT_DOUBLE_EQ(v[0], 1.0);
  EXPECT_DOUBLE_EQ(v[1], 0.4);
}

TEST(ResourceVector, FitsWithin) {
  ResourceVector cap{1.0, 1.0};
  EXPECT_TRUE((ResourceVector{1.0, 1.0}).fits_within(cap));
  EXPECT_TRUE((ResourceVector{0.0, 0.0}).fits_within(cap));
  EXPECT_FALSE((ResourceVector{1.1, 0.5}).fits_within(cap));
  EXPECT_FALSE((ResourceVector{0.5, 1.00001}).fits_within(cap));
}

TEST(ResourceVector, FitsWithinToleratesFloatSlop) {
  // Sum of ten 0.1s exceeds 1.0 by float error; must still "fit".
  ResourceVector acc(2);
  for (int i = 0; i < 10; ++i) acc += ResourceVector{0.1, 0.1};
  EXPECT_TRUE(acc.fits_within(ResourceVector{1.0, 1.0}));
}

TEST(ResourceVector, AnyNegative) {
  EXPECT_FALSE((ResourceVector{0.0, 0.0}).any_negative());
  EXPECT_TRUE((ResourceVector{0.5, -0.1}).any_negative());
  // Tiny float error below zero is tolerated.
  EXPECT_FALSE((ResourceVector{-1e-12, 0.0}).any_negative());
}

TEST(ResourceVector, AllFinite) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_TRUE((ResourceVector{0.0, 1.0}).all_finite());
  EXPECT_FALSE((ResourceVector{nan, 0.0}).all_finite());
  EXPECT_FALSE((ResourceVector{0.0, inf}).all_finite());
  EXPECT_FALSE((ResourceVector{-inf, 0.0}).all_finite());
  // The trap this method exists for: NaN/Inf are NOT "negative".
  EXPECT_FALSE((ResourceVector{nan, nan}).any_negative());
  EXPECT_FALSE((ResourceVector{inf, inf}).any_negative());
}

TEST(ResourceVector, DotProduct) {
  EXPECT_DOUBLE_EQ((ResourceVector{0.5, 0.2}).dot(ResourceVector{2.0, 10.0}),
                   3.0);
}

TEST(ResourceVector, SumAndMax) {
  ResourceVector v{0.3, 0.7};
  EXPECT_DOUBLE_EQ(v.sum(), 1.0);
  EXPECT_DOUBLE_EQ(v.max_component(), 0.7);
}

TEST(ResourceVector, Clamp) {
  ResourceVector v{-0.5, 1.5};
  v.clamp(0.0, 1.0);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 1.0);
}

TEST(ResourceVector, ToString) {
  EXPECT_EQ((ResourceVector{0.5, 0.25}).to_string(), "(0.5, 0.25)");
}

}  // namespace
}  // namespace spear
