#include "mcts/transposition.h"

#include <memory>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "env/env.h"
#include "support/builders.h"

namespace spear {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

SchedulingEnv make_env(Dag dag) {
  EnvOptions options;
  options.max_ready = std::max<std::size_t>(dag.num_tasks(), 1);
  return SchedulingEnv(std::make_shared<Dag>(std::move(dag)), cap(), options);
}

TranspositionCache::Key key_of(const SchedulingEnv& env) {
  TranspositionCache::Key key;
  env.append_canonical_key(key);
  return key;
}

TEST(TranspositionCache, HitReturnsBitwiseIdenticalPriors) {
  TranspositionCache cache(8);
  const TranspositionCache::Key key = {1, 2, 3};
  // Exactly representable and deliberately awkward doubles: a hit must
  // return the stored words bit for bit, not a recomputed approximation.
  const TranspositionCache::Priors priors = {
      {2, 0.625}, {0, 0.3125}, {5, 1.0 / 3.0}};
  cache.insert(key, priors);

  const TranspositionCache::Priors* hit = cache.find(key);
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->size(), priors.size());
  for (std::size_t i = 0; i < priors.size(); ++i) {
    EXPECT_EQ((*hit)[i].first, priors[i].first);
    EXPECT_EQ((*hit)[i].second, priors[i].second);  // exact, not NEAR
  }
}

TEST(TranspositionCache, MissesOnUnknownKey) {
  TranspositionCache cache(8);
  cache.insert({1, 2, 3}, {{0, 1.0}});
  EXPECT_EQ(cache.find({1, 2, 4}), nullptr);
  // Prefixes and extensions are distinct keys, not hash-degenerate hits.
  EXPECT_EQ(cache.find({1, 2}), nullptr);
  EXPECT_EQ(cache.find({1, 2, 3, 0}), nullptr);
}

TEST(TranspositionCache, DuplicateInsertKeepsFirstEntry) {
  TranspositionCache cache(8);
  cache.insert({7}, {{1, 0.75}});
  cache.insert({7}, {{9, 0.25}});
  const auto* hit = cache.find({7});
  ASSERT_NE(hit, nullptr);
  ASSERT_EQ(hit->size(), 1u);
  EXPECT_EQ((*hit)[0].first, 1);
  EXPECT_EQ((*hit)[0].second, 0.75);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(TranspositionCache, FifoEvictionUnderCap) {
  TranspositionCache cache(2);
  cache.insert({1}, {{1, 1.0}});
  cache.insert({2}, {{2, 1.0}});
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_NE(cache.find({1}), nullptr);
  EXPECT_NE(cache.find({2}), nullptr);

  cache.insert({3}, {{3, 1.0}});  // evicts the OLDEST entry, key {1}
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find({1}), nullptr);
  EXPECT_NE(cache.find({2}), nullptr);
  EXPECT_NE(cache.find({3}), nullptr);
}

TEST(TranspositionCache, ZeroCapacityDisables) {
  TranspositionCache cache(0);
  cache.insert({1, 2}, {{0, 1.0}});
  EXPECT_EQ(cache.find({1, 2}), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(TranspositionCache, ClearDropsEverything) {
  TranspositionCache cache(4);
  cache.insert({1}, {{0, 1.0}});
  cache.insert({2}, {{1, 1.0}});
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.find({1}), nullptr);
  // The FIFO queue was cleared too: refills evict in the NEW order.
  cache.insert({3}, {{2, 1.0}});
  EXPECT_NE(cache.find({3}), nullptr);
}

TEST(ActionCache, StoresAndEvictsFifo) {
  ActionCache cache(2);
  cache.insert({1}, 10);
  cache.insert({2}, 20);
  const int* hit = cache.find({1});
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 10);

  cache.insert({3}, 30);  // evicts key {1}
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_EQ(cache.find({1}), nullptr);
  ASSERT_NE(cache.find({2}), nullptr);
  EXPECT_EQ(*cache.find({2}), 20);
  ASSERT_NE(cache.find({3}), nullptr);
  EXPECT_EQ(*cache.find({3}), 30);
}

TEST(ActionCache, DuplicateInsertKeepsFirstEntry) {
  ActionCache cache(4);
  cache.insert({5}, 1);
  cache.insert({5}, 2);
  ASSERT_NE(cache.find({5}), nullptr);
  EXPECT_EQ(*cache.find({5}), 1);
}

TEST(ActionCache, ZeroCapacityDisables) {
  ActionCache cache(0);
  cache.insert({1}, 42);
  EXPECT_EQ(cache.find({1}), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(CanonicalKey, IdenticalStatesProduceIdenticalKeys) {
  SchedulingEnv env = make_env(testing::make_independent(3, 4));
  const SchedulingEnv copy = env;
  EXPECT_EQ(key_of(env), key_of(copy));
}

TEST(CanonicalKey, DistinguishesProgressedStates) {
  SchedulingEnv env = make_env(testing::make_independent(3, 4));
  const TranspositionCache::Key before = key_of(env);
  SchedulingEnv stepped = env;
  stepped.step(0);  // schedule one ready task
  EXPECT_NE(before, key_of(stepped));
  SchedulingEnv other = env;
  other.step(1);  // a DIFFERENT ready task: also distinct from both
  EXPECT_NE(key_of(stepped), key_of(other));
  EXPECT_NE(before, key_of(other));
}

TEST(CanonicalKey, HashSpreadsDistinctKeys) {
  // Not a correctness requirement (lookups compare full keys), but the
  // mix should not be trivially degenerate on near-identical keys.
  const auto h1 = TranspositionCache::hash_key({0, 0, 1});
  const auto h2 = TranspositionCache::hash_key({0, 1, 0});
  const auto h3 = TranspositionCache::hash_key({0, 0, 1, 0});
  EXPECT_NE(h1, h2);
  EXPECT_NE(h1, h3);
}

}  // namespace
}  // namespace spear
