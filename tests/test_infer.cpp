// Shared cross-request batched inference (DESIGN.md §15).
//
// The load-bearing claim is BIT-IDENTITY: a row's result never depends on
// which other rows shared its fused batch, on batch_max, on the timeout,
// on how many clients raced, or on whether the forward went through the
// service at all.  These tests pin that end to end — service outputs vs
// private Policy forwards byte for byte, search placements across
// batch_max and worker counts, and the scheduling service across
// --infer-mode — plus the ring's backpressure/close-drain edges and the
// sharded rollout action cache the leaf search shares across workers.

#include "infer/service.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <stdexcept>
#include <thread>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "dag/generator.h"
#include "dag/io.h"
#include "mcts/mcts.h"
#include "mcts/policies.h"
#include "mcts/transposition.h"
#include "rl/policy.h"
#include "svc/service.h"

namespace spear {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

Dag test_dag(std::uint64_t seed, std::size_t tasks = 12) {
  DagGeneratorOptions gen;
  gen.num_tasks = tasks;
  Rng rng(seed);
  return generate_random_dag(gen, rng);
}

std::shared_ptr<const Policy> make_policy(std::uint64_t seed = 5) {
  Rng rng(seed);
  return std::make_shared<const Policy>(
      Policy::make(FeaturizerOptions{}, 2, rng, {16}));
}

/// A spread of distinct scheduling states: initial states of distinct
/// random DAGs (each has its own ready set, so each row differs).
std::vector<SchedulingEnv> make_states(std::size_t n,
                                       std::uint64_t seed = 100) {
  std::vector<SchedulingEnv> states;
  states.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    states.emplace_back(std::make_shared<Dag>(test_dag(seed + i)), cap());
  }
  return states;
}

std::vector<const SchedulingEnv*> pointers(
    const std::vector<SchedulingEnv>& states) {
  std::vector<const SchedulingEnv*> out;
  out.reserve(states.size());
  for (const SchedulingEnv& s : states) out.push_back(&s);
  return out;
}

/// The private reference every service result must match byte for byte.
void reference_forward(const Policy& policy,
                       const std::vector<const SchedulingEnv*>& envs,
                       std::vector<std::vector<bool>>& masks,
                       std::vector<std::vector<double>>& probs) {
  policy.action_probs_batch(envs.data(), envs.size(), masks, probs);
}

void expect_bit_identical(const std::vector<std::vector<double>>& a,
                          const std::vector<std::vector<double>>& b) {
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(a[i].size(), b[i].size()) << "row " << i;
    for (std::size_t j = 0; j < a[i].size(); ++j) {
      // EQ, not NEAR: fused batches must reproduce the exact bits.
      EXPECT_EQ(a[i][j], b[i][j]) << "row " << i << " output " << j;
    }
  }
}

infer::InferenceOptions tight_options(std::size_t batch_max) {
  infer::InferenceOptions options;
  options.batch_max = batch_max;
  options.batch_timeout_us = 50;
  return options;
}

TEST(InferService, MatchesPrivateForwardBitIdentical) {
  const auto policy = make_policy();
  const auto states = make_states(8);
  const auto envs = pointers(states);
  std::vector<std::vector<bool>> want_masks, got_masks;
  std::vector<std::vector<double>> want_probs, got_probs;
  reference_forward(*policy, envs, want_masks, want_probs);

  for (const std::size_t batch_max : {std::size_t{1}, std::size_t{32}}) {
    infer::InferenceService service(policy, tight_options(batch_max));
    service.infer(envs.data(), envs.size(), got_masks, got_probs);
    expect_bit_identical(want_probs, got_probs);
    ASSERT_EQ(want_masks.size(), got_masks.size());
    for (std::size_t i = 0; i < want_masks.size(); ++i) {
      EXPECT_EQ(want_masks[i], got_masks[i]) << "mask " << i;
    }
  }
}

TEST(InferService, SingleRowRequestsMatchToo) {
  const auto policy = make_policy();
  const auto states = make_states(6);
  const auto envs = pointers(states);
  std::vector<std::vector<bool>> want_masks, got_masks;
  std::vector<std::vector<double>> want_probs, got_probs;
  reference_forward(*policy, envs, want_masks, want_probs);

  infer::InferenceService service(policy, tight_options(64));
  for (std::size_t i = 0; i < envs.size(); ++i) {
    const SchedulingEnv* env = envs[i];
    service.infer(&env, 1, got_masks, got_probs);
    ASSERT_EQ(got_probs.size(), 1u);
    for (std::size_t j = 0; j < want_probs[i].size(); ++j) {
      EXPECT_EQ(want_probs[i][j], got_probs[0][j]) << "row " << i;
    }
  }
}

TEST(InferService, ConcurrentClientsAllBitIdentical) {
  const auto policy = make_policy();
  // Per-client disjoint state sets so a cross-wired scatter would be
  // caught by the content check, not just by luck.
  constexpr std::size_t kClients = 4;
  constexpr std::size_t kRounds = 25;
  std::vector<std::vector<SchedulingEnv>> states;
  std::vector<std::vector<std::vector<double>>> want(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    states.push_back(make_states(3, 200 + 10 * c));
    std::vector<std::vector<bool>> masks;
    reference_forward(*policy, pointers(states[c]), masks, want[c]);
  }

  infer::InferenceService service(policy, tight_options(16));
  std::atomic<int> mismatches{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const auto envs = pointers(states[c]);
      std::vector<std::vector<bool>> masks;
      std::vector<std::vector<double>> probs;
      for (std::size_t round = 0; round < kRounds; ++round) {
        service.infer(envs.data(), envs.size(), masks, probs);
        if (probs.size() != want[c].size()) {
          ++mismatches;
          continue;
        }
        for (std::size_t i = 0; i < probs.size(); ++i) {
          if (probs[i] != want[c][i]) ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(mismatches.load(), 0);
  const infer::InferenceStats stats = service.stats();
  EXPECT_EQ(stats.requests,
            static_cast<std::int64_t>(kClients * kRounds));
  EXPECT_EQ(stats.rows, static_cast<std::int64_t>(kClients * kRounds * 3));
  EXPECT_GT(stats.forwards, 0);
  // Every batch closed for exactly one recorded reason.
  EXPECT_EQ(stats.full_closes + stats.timeout_closes + stats.client_closes +
                stats.drain_closes,
            stats.forwards);
}

TEST(InferRing, TinyCapacityBackpressesWithoutLossOrDeadlock) {
  const auto policy = make_policy();
  infer::InferenceOptions options = tight_options(4);
  options.queue_capacity = 1;  // every second enqueue must block
  infer::InferenceService service(policy, options);

  const auto states = make_states(2);
  std::atomic<int> completed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      const SchedulingEnv* env = &states[static_cast<std::size_t>(c) % 2];
      std::vector<std::vector<bool>> masks;
      std::vector<std::vector<double>> probs;
      for (int round = 0; round < 50; ++round) {
        service.infer(&env, 1, masks, probs);
        ++completed;
      }
    });
  }
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(completed.load(), 200);
  EXPECT_EQ(service.stats().requests, 200);
}

TEST(InferRing, ShutdownDrainsEveryAcceptedRequest) {
  const auto policy = make_policy();
  infer::InferenceOptions options = tight_options(8);
  options.queue_capacity = 2;
  auto service =
      std::make_unique<infer::InferenceService>(policy, options);

  const auto states = make_states(2);
  std::atomic<int> completed{0};
  std::atomic<int> refused{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      const SchedulingEnv* env = &states[static_cast<std::size_t>(c) % 2];
      std::vector<std::vector<bool>> masks;
      std::vector<std::vector<double>> probs;
      for (int round = 0; round < 50; ++round) {
        try {
          service->infer(&env, 1, masks, probs);
          ++completed;
        } catch (const std::runtime_error&) {
          ++refused;  // enqueue observed the closed ring
        }
      }
    });
  }
  // Race shutdown against the in-flight clients: accepted requests must
  // still complete (drain), later ones must throw — nothing may hang.
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  service->shutdown();
  for (std::thread& t : clients) t.join();
  EXPECT_EQ(completed.load() + refused.load(), 200);
  EXPECT_EQ(service->stats().requests, completed.load());
  EXPECT_THROW(
      {
        const SchedulingEnv* env = &states[0];
        std::vector<std::vector<bool>> masks;
        std::vector<std::vector<double>> probs;
        service->infer(&env, 1, masks, probs);
      },
      std::runtime_error);
}

TEST(InferService, SwapPolicyAffectsLaterForwards) {
  const auto policy_a = make_policy(5);
  const auto policy_b = make_policy(6);
  const auto states = make_states(4);
  const auto envs = pointers(states);
  std::vector<std::vector<bool>> masks;
  std::vector<std::vector<double>> want_a, want_b, got;
  reference_forward(*policy_a, envs, masks, want_a);
  reference_forward(*policy_b, envs, masks, want_b);

  infer::InferenceService service(policy_a, tight_options(16));
  service.infer(envs.data(), envs.size(), masks, got);
  expect_bit_identical(want_a, got);

  service.swap_policy(policy_b);
  EXPECT_EQ(service.policy().get(), policy_b.get());
  service.infer(envs.data(), envs.size(), masks, got);
  expect_bit_identical(want_b, got);
}

TEST(InferService, HistPercentileNearestRank) {
  EXPECT_EQ(infer::hist_percentile({}, 50.0), 0.0);
  EXPECT_EQ(infer::hist_percentile({0, 0, 0}, 99.0), 0.0);
  // 10 forwards of width 1: every percentile is 1.
  std::vector<std::int64_t> hist(5, 0);
  hist[1] = 10;
  EXPECT_EQ(infer::hist_percentile(hist, 50.0), 1.0);
  EXPECT_EQ(infer::hist_percentile(hist, 99.0), 1.0);
  // 9 of width 1, 1 of width 4: p50 = 1, p99 lands on the wide one.
  hist[4] = 1;
  hist[1] = 9;
  EXPECT_EQ(infer::hist_percentile(hist, 50.0), 1.0);
  EXPECT_EQ(infer::hist_percentile(hist, 99.0), 4.0);
}

TEST(InferBatch, LeafPlacementsInvariantToBatchMaxAndWorkers) {
  // The batching-determinism contract at the search level: the SAME leaf
  // search, with forwards routed through the shared service, must place
  // byte-identically whether batches fuse 1 row or 32, and however many
  // worker threads race rows into the ring — and both must equal the
  // private-forward reference.
  const auto policy = make_policy();
  const Dag dag = test_dag(31, 16);
  MctsOptions options;
  options.initial_budget = 48;
  options.min_budget = 16;
  options.search_mode = SearchMode::kLeaf;
  options.seed = 77;

  options.num_threads = 1;
  MctsScheduler reference_mcts(
      options, std::make_shared<DrlDecisionPolicy>(policy, /*greedy=*/true));
  const auto reference = reference_mcts.schedule(dag, cap()).placements();

  for (const std::size_t batch_max : {std::size_t{1}, std::size_t{32}}) {
    for (const int threads : {1, 2, 4}) {
      auto service = std::make_shared<infer::InferenceService>(
          policy, tight_options(batch_max));
      options.num_threads = threads;
      MctsScheduler mcts(options, std::make_shared<DrlDecisionPolicy>(
                                      policy, /*greedy=*/true, service));
      const auto got = mcts.schedule(dag, cap()).placements();
      ASSERT_EQ(reference.size(), got.size())
          << "batch_max " << batch_max << " threads " << threads;
      for (std::size_t i = 0; i < reference.size(); ++i) {
        EXPECT_EQ(reference[i].task, got[i].task)
            << "batch_max " << batch_max << " threads " << threads;
        EXPECT_EQ(reference[i].start, got[i].start)
            << "batch_max " << batch_max << " threads " << threads;
      }
      service->shutdown();
    }
  }
}

TEST(SvcSharedInference, ServicePlacementsMatchPrivateMode) {
  // One worker, synchronous submits: which worker serves each job is
  // pinned, so --infer-mode must be unobservable in the results.
  const auto policy = make_policy();
  const Dag dag = test_dag(41, 10);
  const std::string dag_text = dag_to_text(dag);

  const auto run = [&](svc::InferMode mode) {
    svc::ServiceOptions options;
    options.workers = 1;
    options.search_iterations = 32;
    options.min_iterations = 8;
    options.policy = policy;
    options.infer_mode = mode;
    options.infer.batch_max = 16;
    options.infer.batch_timeout_us = 50;
    svc::SchedulerService service(options);
    service.start();
    std::vector<svc::SubmitResult> results;
    for (int j = 0; j < 3; ++j) {
      svc::SubmitRequest request;
      request.id = "job" + std::to_string(j);
      request.dag_text = dag_text;
      std::mutex m;
      std::condition_variable cv;
      bool done = false;
      service.submit(request, [&](bool ok, const svc::SubmitResult& result,
                                  const svc::Rejection&) {
        ASSERT_TRUE(ok);
        std::lock_guard<std::mutex> lock(m);
        results.push_back(result);
        done = true;
        cv.notify_one();
      });
      std::unique_lock<std::mutex> lock(m);
      cv.wait(lock, [&] { return done; });
    }
    const svc::ServiceCounters counters = service.counters();
    const infer::InferenceService* infer_service = service.infer_service();
    service.shutdown();
    return std::make_tuple(results, counters,
                           infer_service ? infer_service->stats()
                                         : infer::InferenceStats{});
  };

  const auto [private_results, private_counters, private_infer] =
      run(svc::InferMode::kPrivate);
  const auto [shared_results, shared_counters, shared_infer] =
      run(svc::InferMode::kShared);

  ASSERT_EQ(private_results.size(), shared_results.size());
  for (std::size_t j = 0; j < private_results.size(); ++j) {
    EXPECT_EQ(private_results[j].makespan, shared_results[j].makespan);
    EXPECT_EQ(private_results[j].placements, shared_results[j].placements);
  }
  // The physical-forward ledgers swap roles between modes: private counts
  // guide kernels, shared counts the service's fused batches.
  EXPECT_GT(private_counters.search_forwards, 0);
  EXPECT_EQ(private_infer.forwards, 0);
  EXPECT_EQ(shared_counters.search_forwards, 0);
  EXPECT_GT(shared_infer.forwards, 0);
  // Identical logical work: the rows the private guides forwarded are
  // exactly the rows the shared service scored.
  EXPECT_EQ(private_counters.search_forward_rows, shared_infer.rows);
}

TEST(InferSharedActionCache, FindInsertAcrossShards) {
  SharedActionCache cache(64, 4);
  EXPECT_EQ(cache.size(), 0u);
  for (std::uint64_t k = 0; k < 40; ++k) {
    cache.insert({k, k + 1}, static_cast<int>(k));
  }
  EXPECT_EQ(cache.size(), 40u);
  int action = -1;
  for (std::uint64_t k = 0; k < 40; ++k) {
    ASSERT_TRUE(cache.find({k, k + 1}, &action)) << "key " << k;
    EXPECT_EQ(action, static_cast<int>(k));
  }
  EXPECT_FALSE(cache.find({999, 1000}, &action));
  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_FALSE(cache.find({1, 2}, &action));
}

TEST(InferSharedActionCache, DuplicateInsertKeepsFirst) {
  SharedActionCache cache(16, 2);
  cache.insert({7, 7}, 1);
  cache.insert({7, 7}, 2);
  int action = -1;
  ASSERT_TRUE(cache.find({7, 7}, &action));
  EXPECT_EQ(action, 1);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(InferSharedActionCache, BoundedByCapacityWithFifoEviction) {
  // 8 entries over 2 shards = 4 per shard; overfilling evicts the oldest
  // per shard, never growing past the per-shard cap.
  SharedActionCache cache(8, 2);
  for (std::uint64_t k = 0; k < 100; ++k) {
    cache.insert({k}, static_cast<int>(k));
  }
  EXPECT_LE(cache.size(), 8u);
  EXPECT_GT(cache.size(), 0u);
}

TEST(InferSharedActionCache, ZeroCapacityDisables) {
  SharedActionCache cache(0);
  cache.insert({1}, 1);
  int action = -1;
  EXPECT_FALSE(cache.find({1}, &action));
  EXPECT_EQ(cache.size(), 0u);
}

TEST(InferSharedActionCache, ConcurrentMixedUseIsSafe) {
  SharedActionCache cache(256, 8);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      int action = -1;
      for (std::uint64_t k = 0; k < 500; ++k) {
        const SharedActionCache::Key key{k % 64, static_cast<std::uint64_t>(t % 2)};
        if (cache.find(key, &action)) {
          // Values are keyed deterministically, so a hit must agree.
          EXPECT_EQ(action, static_cast<int>((k % 64) ^ static_cast<std::uint64_t>(t % 2)));
        } else {
          cache.insert(key, static_cast<int>((k % 64) ^ static_cast<std::uint64_t>(t % 2)));
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();
}

}  // namespace
}  // namespace spear
