#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace spear {
namespace {

TEST(SplitMix64, IsDeterministic) {
  SplitMix64 a(123);
  SplitMix64 b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DifferentSeedsDiffer) {
  SplitMix64 a(1);
  SplitMix64 b(2);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, SameSeedSameSequence) {
  Rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.uniform();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, UniformRangeRespected) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.uniform(-3.5, 2.5);
    EXPECT_GE(x, -3.5);
    EXPECT_LT(x, 2.5);
  }
}

TEST(Rng, UniformMeanIsCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.uniform();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, UniformIntCoversInclusiveRange) {
  Rng rng(3);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(2, 5);
    EXPECT_GE(x, 2);
    EXPECT_LE(x, 5);
    seen.insert(x);
  }
  EXPECT_EQ(seen.size(), 4u);  // 2, 3, 4, 5 all appear
}

TEST(Rng, UniformIntSingleton) {
  Rng rng(3);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.uniform_int(7, 7), 7);
}

TEST(Rng, UniformIntNegativeRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const auto x = rng.uniform_int(-10, -5);
    EXPECT_GE(x, -10);
    EXPECT_LE(x, -5);
  }
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(5);
  const int n = 100000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, NormalShiftScale) {
  Rng rng(5);
  const int n = 50000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(Rng, TruncatedNormalStaysInBounds) {
  Rng rng(13);
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.truncated_normal(0.5, 10.0, 0.0, 1.0);
    EXPECT_GE(x, 0.0);
    EXPECT_LE(x, 1.0);
  }
}

TEST(Rng, TruncatedNormalDegenerateIntervalClamps) {
  Rng rng(13);
  EXPECT_DOUBLE_EQ(rng.truncated_normal(100.0, 0.001, 5.0, 5.0), 5.0);
}

TEST(Rng, BernoulliEdges) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.bernoulli(0.0));
    EXPECT_TRUE(rng.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliRate) {
  Rng rng(17);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, CategoricalRespectsWeights) {
  Rng rng(23);
  std::vector<double> weights = {1.0, 0.0, 3.0};
  std::vector<int> counts(3, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[rng.categorical(weights)];
  EXPECT_EQ(counts[1], 0);
  EXPECT_NEAR(static_cast<double>(counts[0]) / n, 0.25, 0.02);
  EXPECT_NEAR(static_cast<double>(counts[2]) / n, 0.75, 0.02);
}

TEST(Rng, CategoricalAllZeroThrows) {
  Rng rng(1);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_THROW(rng.categorical(weights), std::invalid_argument);
}

TEST(Rng, CategoricalSingleElement) {
  Rng rng(1);
  std::vector<double> weights = {0.5};
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.categorical(weights), 0u);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng rng(29);
  std::vector<int> v(50);
  for (int i = 0; i < 50; ++i) v[static_cast<std::size_t>(i)] = i;
  auto shuffled = v;
  rng.shuffle(shuffled);
  EXPECT_FALSE(std::equal(v.begin(), v.end(), shuffled.begin()));
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, v);
}

TEST(Rng, ShuffleEmptyAndSingle) {
  Rng rng(1);
  std::vector<int> empty;
  rng.shuffle(empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {42};
  rng.shuffle(one);
  EXPECT_EQ(one, std::vector<int>{42});
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(31);
  Rng child = parent.split();
  // Child stream should not mirror the parent's continued stream.
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (parent.next_u64() == child.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitIsDeterministic) {
  Rng a(31), b(31);
  Rng ca = a.split();
  Rng cb = b.split();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(ca.next_u64(), cb.next_u64());
}

TEST(RngState, RoundTripContinuesIdentically) {
  Rng original(41);
  // Burn a mixed prefix so the captured state is mid-stream.
  for (int i = 0; i < 37; ++i) original.next_u64();
  original.normal();
  const RngState state = original.state();

  Rng restored(0);  // different seed: set_state must fully overwrite it
  restored.set_state(state);
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(original.next_u64(), restored.next_u64()) << "draw " << i;
  }
}

TEST(RngState, CapturesBoxMullerCache) {
  // normal() produces two values per Box-Muller transform and caches the
  // second.  If the cache were not part of the state, a restore between
  // the pair would shift every later normal draw.
  Rng original(42);
  original.normal();  // leaves one cached normal pending
  const RngState state = original.state();
  EXPECT_TRUE(state.has_cached_normal);

  Rng restored(7);
  restored.set_state(state);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(original.normal(), restored.normal()) << "draw " << i;
  }
}

TEST(RngState, SetStateRewindsAStream) {
  Rng rng(43);
  const RngState mark = rng.state();
  std::vector<std::uint64_t> first;
  for (int i = 0; i < 20; ++i) first.push_back(rng.next_u64());
  rng.set_state(mark);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(rng.next_u64(), first[i]);
}

}  // namespace
}  // namespace spear
