#include "env/featurizer.h"

#include <memory>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dag/generator.h"
#include "support/builders.h"

namespace spear {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

SchedulingEnv make_env(Dag dag, std::size_t max_ready = 15) {
  EnvOptions options;
  options.max_ready = max_ready;
  return SchedulingEnv(std::make_shared<Dag>(std::move(dag)), cap(), options);
}

TEST(Featurizer, InputDimFormula) {
  Featurizer f;  // horizon 20, max_ready 15
  // 20*2 (image) + 15*(4 + 2*2) (ready slots) + 3 (globals) = 163.
  EXPECT_EQ(f.input_dim(2), 163u);
  // 3 resources: 20*3 + 15*10 + 3 = 213.
  EXPECT_EQ(f.input_dim(3), 213u);
}

TEST(Featurizer, ActionLayout) {
  Featurizer f;
  EXPECT_EQ(f.num_actions(), 16u);
  EXPECT_EQ(f.process_output(), 15u);
}

TEST(Featurizer, RejectsBadOptions) {
  FeaturizerOptions bad;
  bad.horizon = 0;
  EXPECT_THROW(Featurizer{bad}, std::invalid_argument);
  bad = {};
  bad.max_ready = 0;
  EXPECT_THROW(Featurizer{bad}, std::invalid_argument);
}

TEST(Featurizer, OutputSizeMatchesInputDim) {
  Featurizer f;
  auto env = make_env(testing::make_chain({3, 4}));
  std::vector<double> out;
  f.featurize(env, out);
  EXPECT_EQ(out.size(), f.input_dim(2));
}

TEST(Featurizer, IdleClusterImageIsZero) {
  Featurizer f;
  auto env = make_env(testing::make_chain({3, 4}));
  std::vector<double> out;
  f.featurize(env, out);
  for (std::size_t i = 0; i < 40; ++i) {  // horizon 20 x 2 resources
    EXPECT_DOUBLE_EQ(out[i], 0.0);
  }
}

TEST(Featurizer, ClusterImageShowsRunningTask) {
  FeaturizerOptions options;
  options.horizon = 4;
  options.max_ready = 3;
  Featurizer f(options);
  auto env = make_env(
      testing::make_independent(2, 2, ResourceVector{0.5, 0.25}), 3);
  env.step(0);  // one task running for 2 slots
  std::vector<double> out;
  f.featurize(env, out);
  // Slots 0..1 busy, 2..3 idle; layout [t0.cpu, t0.mem, t1.cpu, ...].
  EXPECT_DOUBLE_EQ(out[0], 0.5);
  EXPECT_DOUBLE_EQ(out[1], 0.25);
  EXPECT_DOUBLE_EQ(out[2], 0.5);
  EXPECT_DOUBLE_EQ(out[3], 0.25);
  EXPECT_DOUBLE_EQ(out[4], 0.0);
  EXPECT_DOUBLE_EQ(out[5], 0.0);
}

TEST(Featurizer, ReadySlotEncodesTaskFeatures) {
  FeaturizerOptions options;
  options.horizon = 2;
  options.max_ready = 2;
  Featurizer f(options);
  // Chain t0(3, {0.5, 0.2}) -> t1(1, ...): b-level(t0) = 4 = CP.
  DagBuilder builder;
  const TaskId a = builder.add_task(3, ResourceVector{0.5, 0.2});
  const TaskId b = builder.add_task(1, ResourceVector{0.1, 0.1});
  builder.add_edge(a, b);
  auto env = make_env(std::move(builder).build(), 2);

  std::vector<double> out;
  f.featurize(env, out);
  const std::size_t base = 2 * 2;  // after the cluster image
  EXPECT_DOUBLE_EQ(out[base + 0], 1.0);        // present
  EXPECT_DOUBLE_EQ(out[base + 1], 3.0 / 4.0);  // runtime / CP
  EXPECT_DOUBLE_EQ(out[base + 2], 0.5);        // cpu demand
  EXPECT_DOUBLE_EQ(out[base + 3], 0.2);        // mem demand
  EXPECT_DOUBLE_EQ(out[base + 4], 1.0);        // b-level / CP
  EXPECT_DOUBLE_EQ(out[base + 5], 1.0 / 2.0);  // children / n
  // b-loads normalized by total load: task0 load = full path load.
  const double total_cpu = 3 * 0.5 + 1 * 0.1;
  EXPECT_DOUBLE_EQ(out[base + 6], (3 * 0.5 + 1 * 0.1) / total_cpu);
  // Second slot is empty (t1 not ready): all zeros.
  const std::size_t slot2 = base + 8;
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(out[slot2 + i], 0.0);
  }
}

TEST(Featurizer, GlobalScalars) {
  FeaturizerOptions options;
  options.horizon = 2;
  options.max_ready = 2;
  Featurizer f(options);
  auto env = make_env(
      testing::make_independent(4, 2, ResourceVector{0.2, 0.2}), 2);
  env.step(0);  // 1 running, 2 visible ready, 1 backlogged
  std::vector<double> out;
  f.featurize(env, out);
  const std::size_t g = out.size() - 3;
  EXPECT_DOUBLE_EQ(out[g + 0], 1.0 / 4.0);  // backlog fraction
  EXPECT_DOUBLE_EQ(out[g + 1], 0.0);        // completed fraction
  EXPECT_DOUBLE_EQ(out[g + 2], 1.0 / 4.0);  // running fraction
}

TEST(Featurizer, GraphFeatureAblationShrinksInput) {
  FeaturizerOptions options;
  options.graph_features = false;
  Featurizer f(options);
  // 20*2 + 15*(2 + 2) + 3 = 103 without graph features.
  EXPECT_EQ(f.input_dim(2), 103u);
}

TEST(Featurizer, GraphFeatureAblationDropsBLevel) {
  FeaturizerOptions options;
  options.horizon = 2;
  options.max_ready = 2;
  options.graph_features = false;
  Featurizer f(options);
  DagBuilder builder;
  const TaskId a = builder.add_task(3, ResourceVector{0.5, 0.2});
  const TaskId b = builder.add_task(1, ResourceVector{0.1, 0.1});
  builder.add_edge(a, b);
  auto env = make_env(std::move(builder).build(), 2);
  std::vector<double> out;
  f.featurize(env, out);
  ASSERT_EQ(out.size(), f.input_dim(2));
  const std::size_t base = 2 * 2;
  EXPECT_DOUBLE_EQ(out[base + 0], 1.0);        // present
  EXPECT_DOUBLE_EQ(out[base + 1], 3.0 / 4.0);  // runtime / CP
  EXPECT_DOUBLE_EQ(out[base + 2], 0.5);        // cpu
  EXPECT_DOUBLE_EQ(out[base + 3], 0.2);        // mem
  // Next slot starts right after (no graph features in between).
  EXPECT_DOUBLE_EQ(out[base + 4], 0.0);  // empty slot's "present"
}

TEST(Featurizer, FeaturesBoundedOnRandomDags) {
  Rng rng(3);
  DagGeneratorOptions options;
  options.num_tasks = 40;
  auto dag = generate_random_dag(options, rng);
  auto env = make_env(dag);
  Featurizer f;
  std::vector<double> out;
  while (!env.done()) {
    f.featurize(env, out);
    for (double x : out) {
      EXPECT_GE(x, 0.0);
      EXPECT_LE(x, 1.0 + 1e-9);
    }
    const auto actions = env.valid_actions();
    env.step(actions.front());
  }
}

}  // namespace
}  // namespace spear
