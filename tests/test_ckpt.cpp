// The crash-safety contract of src/ckpt (DESIGN.md §9): binary container
// integrity (CRC footer, truncation detection), atomic writes, generation
// rotation with fallback recovery, the signal/watchdog supervision layer,
// and — the headline guarantee — bit-identical training resume, including
// the fig8b-style learning-curve CSV byte-equality an interrupted bench run
// must reproduce.

#include <bit>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "ckpt/binary_io.h"
#include "ckpt/checkpoint.h"
#include "ckpt/crc32.h"
#include "ckpt/manager.h"
#include "ckpt/supervisor.h"
#include "common/csv.h"
#include "dag/generator.h"
#include "rl/imitation.h"
#include "rl/reinforce.h"

namespace spear {
namespace {

namespace fs = std::filesystem;

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

Policy make_tiny_policy(Rng& rng) {
  FeaturizerOptions options;
  options.max_ready = 4;
  options.horizon = 6;
  return Policy::make(options, 2, rng, {16});
}

std::vector<Dag> tiny_training_set(std::size_t count, std::uint64_t seed) {
  DagGeneratorOptions options;
  options.num_tasks = 8;
  Rng rng(seed);
  return generate_random_dags(options, count, rng);
}

/// Fresh per-test scratch directory.
class ScratchDir {
 public:
  explicit ScratchDir(const std::string& name)
      : path_(fs::path(::testing::TempDir()) / name) {
    fs::remove_all(path_);
    fs::create_directories(path_);
  }
  ~ScratchDir() {
    std::error_code ec;
    fs::remove_all(path_, ec);
  }
  std::string str() const { return path_.string(); }
  fs::path path() const { return path_; }

 private:
  fs::path path_;
};

std::string read_bytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// ---------------------------------------------------------------------------
// CRC32

TEST(Crc32, KnownAnswer) {
  // The standard CRC-32 check value for "123456789".
  const char* msg = "123456789";
  EXPECT_EQ(ckpt::crc32(msg, 9), 0xcbf43926u);
}

TEST(Crc32, IncrementalMatchesOneShot) {
  const std::string data = "spear checkpoint integrity footer";
  ckpt::Crc32 crc;
  crc.update(data.data(), 10);
  crc.update(data.data() + 10, data.size() - 10);
  EXPECT_EQ(crc.value(), ckpt::crc32(data.data(), data.size()));
}

TEST(Crc32, DetectsSingleBitFlip) {
  std::string data = "payload bytes";
  const auto original = ckpt::crc32(data.data(), data.size());
  data[4] = static_cast<char>(data[4] ^ 0x10);
  EXPECT_NE(ckpt::crc32(data.data(), data.size()), original);
}

// ---------------------------------------------------------------------------
// Binary encoding

TEST(BinaryIo, RoundTripsPrimitives) {
  ckpt::BinaryWriter w;
  w.put_u8(7);
  w.put_u32(0xdeadbeefu);
  w.put_u64(0x0123456789abcdefULL);
  w.put_double(-1234.5678);
  w.put_string("phase");
  w.put_doubles({1.0, -2.0, 3.5});
  w.put_u64s({9, 8, 7});

  ckpt::BinaryReader r(w.bytes());
  EXPECT_EQ(r.get_u8(), 7);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.get_double(), -1234.5678);
  EXPECT_EQ(r.get_string(), "phase");
  EXPECT_EQ(r.get_doubles(), (std::vector<double>{1.0, -2.0, 3.5}));
  EXPECT_EQ(r.get_u64s(), (std::vector<std::uint64_t>{9, 8, 7}));
  EXPECT_TRUE(r.exhausted());
}

TEST(BinaryIo, DoublesAreBitExact) {
  // The binary format must round-trip every IEEE-754 value exactly —
  // including the ones the text format cannot represent.
  const std::vector<double> specials = {
      0.0,
      -0.0,
      5e-324,                                    // smallest denormal
      -5e-324,
      2.2250738585072014e-308,                   // smallest normal
      1.7976931348623157e308,                    // largest finite
      -1.7976931348623157e308,
      std::numeric_limits<double>::infinity(),
      -std::numeric_limits<double>::infinity(),
      std::numeric_limits<double>::quiet_NaN(),
  };
  ckpt::BinaryWriter w;
  w.put_doubles(specials);
  ckpt::BinaryReader r(w.bytes());
  const auto back = r.get_doubles();
  ASSERT_EQ(back.size(), specials.size());
  for (std::size_t i = 0; i < specials.size(); ++i) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(back[i]),
              std::bit_cast<std::uint64_t>(specials[i]))
        << "value index " << i;
  }
}

TEST(BinaryIo, TruncatedReadThrows) {
  ckpt::BinaryWriter w;
  w.put_u64(42);
  ckpt::BinaryReader r(w.bytes().data(), 5);  // cut mid-u64
  EXPECT_THROW(r.get_u64(), ckpt::CheckpointError);
}

TEST(BinaryIo, AbsurdLengthPrefixThrows) {
  ckpt::BinaryWriter w;
  w.put_u64(std::numeric_limits<std::uint64_t>::max() / 2);  // huge count
  ckpt::BinaryReader r(w.bytes());
  EXPECT_THROW(r.get_doubles(), ckpt::CheckpointError);
}

// ---------------------------------------------------------------------------
// TrainerState container

ckpt::TrainerState sample_state(std::uint64_t seed) {
  Rng rng(seed);
  Mlp net({3, 4, 2}, rng);
  ckpt::TrainerState state;
  state.phase = ckpt::kPhaseReinforce;
  state.next_epoch = 17;
  state.episodes = 204;
  state.clipped_updates = 3;
  state.skipped_updates = 1;
  state.baseline = -41.25;
  state.rng = rng.state();
  state.curve = {48.0, 45.5, 44.0};
  state.permutation = {2, 0, 1};
  state.net = ckpt::snapshot_of(net);
  state.optimizer = ckpt::snapshot_of(net.make_gradients());
  return state;
}

TEST(Checkpoint, PayloadRoundTrip) {
  const auto state = sample_state(3);
  const auto bytes = ckpt::encode_trainer_state(state);
  const auto back = ckpt::decode_trainer_state(bytes.data(), bytes.size());
  EXPECT_EQ(back, state);
}

TEST(Checkpoint, FileRoundTrip) {
  ScratchDir dir("spear_ckpt_file");
  const std::string path = (dir.path() / "state.spearck").string();
  const auto state = sample_state(4);
  ckpt::write_checkpoint_file(path, state);
  EXPECT_EQ(ckpt::read_checkpoint_file(path), state);
  // Atomic publish leaves no tmp file behind.
  EXPECT_FALSE(fs::exists(path + ".tmp"));
}

TEST(Checkpoint, MissingFileThrows) {
  EXPECT_THROW(ckpt::read_checkpoint_file("/nonexistent/ck.spearck"),
               ckpt::CheckpointError);
}

TEST(Checkpoint, TruncatedFileThrows) {
  ScratchDir dir("spear_ckpt_trunc");
  const std::string path = (dir.path() / "state.spearck").string();
  ckpt::write_checkpoint_file(path, sample_state(5));
  const std::string bytes = read_bytes(path);
  std::ofstream(path, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, bytes.size() / 2);
  EXPECT_THROW(ckpt::read_checkpoint_file(path), ckpt::CheckpointError);
}

TEST(Checkpoint, BitFlipFailsCrc) {
  ScratchDir dir("spear_ckpt_flip");
  const std::string path = (dir.path() / "state.spearck").string();
  ckpt::write_checkpoint_file(path, sample_state(6));
  std::string bytes = read_bytes(path);
  bytes[bytes.size() / 2] = static_cast<char>(bytes[bytes.size() / 2] ^ 0x01);
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
  try {
    ckpt::read_checkpoint_file(path);
    FAIL() << "corrupt checkpoint was accepted";
  } catch (const ckpt::CheckpointError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "error should name the file";
  }
}

TEST(Checkpoint, BadMagicThrows) {
  ScratchDir dir("spear_ckpt_magic");
  const std::string path = (dir.path() / "state.spearck").string();
  ckpt::write_checkpoint_file(path, sample_state(7));
  std::string bytes = read_bytes(path);
  bytes[0] = 'X';
  std::ofstream(path, std::ios::binary | std::ios::trunc) << bytes;
  EXPECT_THROW(ckpt::read_checkpoint_file(path), ckpt::CheckpointError);
}

TEST(Checkpoint, RestoreRejectsTopologyMismatch) {
  Rng rng(8);
  Mlp small({3, 4, 2}, rng);
  Mlp big({3, 8, 2}, rng);
  const auto snap = ckpt::snapshot_of(small);
  EXPECT_THROW(ckpt::restore_into(big, snap), ckpt::CheckpointError);
}

// ---------------------------------------------------------------------------
// Rotation manager

TEST(CheckpointManager, RotatesAndPrunesGenerations) {
  ScratchDir dir("spear_ckpt_rotate");
  ckpt::CheckpointManagerOptions options;
  options.dir = dir.str();
  options.keep = 3;
  ckpt::CheckpointManager manager(options);

  const auto state = sample_state(9);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(manager.save(state), i + 1u);

  EXPECT_EQ(manager.generations(),
            (std::vector<std::uint64_t>{3, 4, 5}));
  EXPECT_FALSE(fs::exists(manager.path_for(1)));
  EXPECT_FALSE(fs::exists(manager.path_for(2)));
  EXPECT_TRUE(fs::exists(manager.path_for(5)));

  const std::string manifest = read_bytes(manager.manifest_path());
  EXPECT_NE(manifest.find("spear-ckpt-manifest v1"), std::string::npos);
  EXPECT_NE(manifest.find("ckpt-000005.spearck"), std::string::npos);
  EXPECT_EQ(manifest.find("ckpt-000001.spearck"), std::string::npos);
}

TEST(CheckpointManager, LoadLatestReturnsNewest) {
  ScratchDir dir("spear_ckpt_latest");
  ckpt::CheckpointManagerOptions options;
  options.dir = dir.str();
  ckpt::CheckpointManager manager(options);

  auto state = sample_state(10);
  state.next_epoch = 1;
  manager.save(state);
  state.next_epoch = 2;
  manager.save(state);

  const auto loaded = manager.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->generation, 2u);
  EXPECT_EQ(loaded->state.next_epoch, 2u);
  EXPECT_EQ(loaded->corrupt_skipped, 0u);
}

TEST(CheckpointManager, EmptyDirectoryLoadsNothing) {
  ScratchDir dir("spear_ckpt_empty");
  ckpt::CheckpointManagerOptions options;
  options.dir = dir.str();
  ckpt::CheckpointManager manager(options);
  EXPECT_FALSE(manager.load_latest().has_value());
}

TEST(CheckpointManager, TruncatedLatestFallsBackToPreviousGeneration) {
  ScratchDir dir("spear_ckpt_fallback");
  ckpt::CheckpointManagerOptions options;
  options.dir = dir.str();
  ckpt::CheckpointManager manager(options);

  auto state = sample_state(11);
  state.next_epoch = 1;
  manager.save(state);
  state.next_epoch = 2;
  manager.save(state);

  // Tear the newest generation mid-file, as a crash during a (non-atomic)
  // copy or a disk fault would.
  const std::string newest = manager.path_for(2);
  const std::string bytes = read_bytes(newest);
  std::ofstream(newest, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, bytes.size() / 3);

  const auto loaded = manager.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->generation, 1u);
  EXPECT_EQ(loaded->state.next_epoch, 1u);
  EXPECT_EQ(loaded->corrupt_skipped, 1u);
}

TEST(CheckpointManager, BitFlippedLatestFallsBack) {
  ScratchDir dir("spear_ckpt_flipfall");
  ckpt::CheckpointManagerOptions options;
  options.dir = dir.str();
  ckpt::CheckpointManager manager(options);

  auto state = sample_state(12);
  state.next_epoch = 1;
  manager.save(state);
  state.next_epoch = 2;
  manager.save(state);

  const std::string newest = manager.path_for(2);
  std::string bytes = read_bytes(newest);
  bytes[bytes.size() - 20] ^= 0x40;
  std::ofstream(newest, std::ios::binary | std::ios::trunc) << bytes;

  const auto loaded = manager.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->generation, 1u);
}

TEST(CheckpointManager, SurvivesMissingManifest) {
  ScratchDir dir("spear_ckpt_nomanifest");
  ckpt::CheckpointManagerOptions options;
  options.dir = dir.str();
  ckpt::CheckpointManager manager(options);
  manager.save(sample_state(13));
  fs::remove(manager.manifest_path());

  EXPECT_EQ(manager.generations(), (std::vector<std::uint64_t>{1}));
  ASSERT_TRUE(manager.load_latest().has_value());
  // The next save continues the generation sequence from the scan.
  EXPECT_EQ(manager.save(sample_state(13)), 2u);
}

// ---------------------------------------------------------------------------
// Supervision: stop flag + watchdog

TEST(Supervisor, StopFlagLifecycle) {
  ckpt::reset_stop_flag();
  EXPECT_FALSE(ckpt::stop_requested());
  ckpt::request_stop();
  EXPECT_TRUE(ckpt::stop_requested());
  ckpt::reset_stop_flag();
  EXPECT_FALSE(ckpt::stop_requested());
}

TEST(Supervisor, SigtermSetsStopFlag) {
  ckpt::reset_stop_flag();
  ASSERT_TRUE(ckpt::install_signal_handlers());
  std::raise(SIGTERM);
  EXPECT_TRUE(ckpt::stop_requested());
  ckpt::reset_stop_flag();
}

TEST(Watchdog, ReportsOverrunOncePerArm) {
  ckpt::Watchdog dog("test");
  dog.arm(std::chrono::milliseconds(5), "slow unit");
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (dog.overruns() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(dog.overruns(), 1u);
  // Stays at one until re-armed.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_EQ(dog.overruns(), 1u);
}

TEST(Watchdog, DisarmBeforeDeadlineIsQuiet) {
  ckpt::Watchdog dog("test");
  {
    ckpt::WatchdogScope scope(dog, std::chrono::milliseconds(250), "fast");
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  EXPECT_EQ(dog.overruns(), 0u);
}

TEST(Watchdog, ZeroDeadlineScopeIsDisabled) {
  ckpt::Watchdog dog("test");
  {
    ckpt::WatchdogScope scope(dog, std::chrono::milliseconds(0), "off");
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(dog.overruns(), 0u);
}

// ---------------------------------------------------------------------------
// Bit-identical training resume

std::vector<std::uint64_t> weight_bits(const Mlp& net) {
  std::vector<std::uint64_t> bits;
  for (const auto& layer : net.layers()) {
    for (double w : layer.weights.data()) {
      bits.push_back(std::bit_cast<std::uint64_t>(w));
    }
    for (double b : layer.bias) bits.push_back(std::bit_cast<std::uint64_t>(b));
  }
  return bits;
}

TEST(Resume, ReinforceKillAndResumeIsBitIdentical) {
  const auto dags = tiny_training_set(2, 20);
  ReinforceOptions options;
  options.epochs = 4;
  options.rollouts_per_example = 3;

  // Uninterrupted run.
  Rng rng_a(21);
  Policy policy_a = make_tiny_policy(rng_a);
  ReinforceTrainer full(policy_a, dags, cap(), options, rng_a);
  while (!full.done()) full.run_epoch();

  // "Killed" after epoch 2: checkpoint through the full binary container,
  // then restore into a brand-new process-alike (fresh policy, fresh rng).
  ScratchDir dir("spear_resume_reinforce");
  const std::string path = (dir.path() / "ck.spearck").string();
  {
    Rng rng_b(21);
    Policy policy_b = make_tiny_policy(rng_b);
    ReinforceTrainer half(policy_b, dags, cap(), options, rng_b);
    half.run_epoch();
    half.run_epoch();
    ckpt::write_checkpoint_file(path, half.checkpoint_state());
  }
  Rng rng_c(21);
  Policy policy_c = make_tiny_policy(rng_c);
  ReinforceTrainer resumed(policy_c, dags, cap(), options, rng_c);
  resumed.restore(ckpt::read_checkpoint_file(path));
  EXPECT_EQ(resumed.next_epoch(), 2u);
  while (!resumed.done()) resumed.run_epoch();

  // The learning curve and the final weights match bit for bit.
  const auto& curve_full = full.result().epoch_mean_makespan;
  const auto& curve_resumed = resumed.result().epoch_mean_makespan;
  ASSERT_EQ(curve_full.size(), curve_resumed.size());
  for (std::size_t e = 0; e < curve_full.size(); ++e) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(curve_full[e]),
              std::bit_cast<std::uint64_t>(curve_resumed[e]))
        << "epoch " << e;
  }
  EXPECT_EQ(weight_bits(policy_a.net()), weight_bits(policy_c.net()));
  EXPECT_EQ(full.episodes(), resumed.episodes());
}

TEST(Resume, ImitationKillAndResumeIsBitIdentical) {
  const auto dags = tiny_training_set(2, 22);
  ImitationOptions options;
  options.epochs = 5;
  options.batch_size = 8;

  Rng rng_a(23);
  Policy policy_a = make_tiny_policy(rng_a);
  auto demos_a = collect_cp_demonstrations(policy_a, dags, cap());
  ImitationTrainer full(policy_a, std::move(demos_a), options, rng_a);
  while (!full.done()) full.run_epoch();

  ScratchDir dir("spear_resume_imitation");
  const std::string path = (dir.path() / "ck.spearck").string();
  {
    Rng rng_b(23);
    Policy policy_b = make_tiny_policy(rng_b);
    auto demos_b = collect_cp_demonstrations(policy_b, dags, cap());
    ImitationTrainer half(policy_b, std::move(demos_b), options, rng_b);
    half.run_epoch();
    half.run_epoch();
    half.run_epoch();
    ckpt::write_checkpoint_file(path, half.checkpoint_state());
  }
  Rng rng_c(23);
  Policy policy_c = make_tiny_policy(rng_c);
  auto demos_c = collect_cp_demonstrations(policy_c, dags, cap());
  ImitationTrainer resumed(policy_c, std::move(demos_c), options, rng_c);
  resumed.restore(ckpt::read_checkpoint_file(path));
  while (!resumed.done()) resumed.run_epoch();

  const auto& losses_full = full.result().epoch_losses;
  const auto& losses_resumed = resumed.result().epoch_losses;
  ASSERT_EQ(losses_full.size(), losses_resumed.size());
  for (std::size_t e = 0; e < losses_full.size(); ++e) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(losses_full[e]),
              std::bit_cast<std::uint64_t>(losses_resumed[e]))
        << "epoch " << e;
  }
  EXPECT_EQ(weight_bits(policy_a.net()), weight_bits(policy_c.net()));
}

TEST(Resume, RestoreRejectsWrongPhase) {
  const auto dags = tiny_training_set(1, 24);
  Rng rng(25);
  Policy policy = make_tiny_policy(rng);
  ReinforceOptions options;
  options.epochs = 1;
  ReinforceTrainer trainer(policy, dags, cap(), options, rng);
  auto state = trainer.checkpoint_state();
  state.phase = ckpt::kPhaseImitation;
  state.permutation = {0};
  EXPECT_THROW(trainer.restore(state), ckpt::CheckpointError);
}

TEST(Resume, RecoversFromCorruptLatestGeneration) {
  // End-to-end recovery: checkpoints at epochs 1..3, the newest torn; the
  // run resumes from generation N-1 (epoch 2) and still reproduces the
  // uninterrupted curve bit for bit.
  const auto dags = tiny_training_set(2, 26);
  ReinforceOptions options;
  options.epochs = 4;
  options.rollouts_per_example = 2;

  Rng rng_a(27);
  Policy policy_a = make_tiny_policy(rng_a);
  ReinforceTrainer full(policy_a, dags, cap(), options, rng_a);
  while (!full.done()) full.run_epoch();

  ScratchDir dir("spear_resume_recover");
  ckpt::CheckpointManagerOptions mo;
  mo.dir = dir.str();
  ckpt::CheckpointManager manager(mo);
  {
    Rng rng_b(27);
    Policy policy_b = make_tiny_policy(rng_b);
    ReinforceTrainer run(policy_b, dags, cap(), options, rng_b);
    for (int e = 0; e < 3; ++e) {
      run.run_epoch();
      manager.save(run.checkpoint_state());
    }
  }
  const auto gens = manager.generations();
  ASSERT_EQ(gens.size(), 3u);
  const std::string newest = manager.path_for(gens.back());
  const std::string bytes = read_bytes(newest);
  std::ofstream(newest, std::ios::binary | std::ios::trunc)
      << bytes.substr(0, bytes.size() / 2);

  const auto loaded = manager.load_latest();
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->state.next_epoch, 2u);

  Rng rng_c(27);
  Policy policy_c = make_tiny_policy(rng_c);
  ReinforceTrainer resumed(policy_c, dags, cap(), options, rng_c);
  resumed.restore(loaded->state);
  while (!resumed.done()) resumed.run_epoch();

  ASSERT_EQ(resumed.result().epoch_mean_makespan.size(),
            full.result().epoch_mean_makespan.size());
  for (std::size_t e = 0; e < options.epochs; ++e) {
    EXPECT_EQ(
        std::bit_cast<std::uint64_t>(full.result().epoch_mean_makespan[e]),
        std::bit_cast<std::uint64_t>(resumed.result().epoch_mean_makespan[e]))
        << "epoch " << e;
  }
  EXPECT_EQ(weight_bits(policy_a.net()), weight_bits(policy_c.net()));
}

TEST(Resume, LearningCurveCsvIsByteIdentical) {
  // The acceptance criterion of the fig8b bench wiring: the CSV a resumed
  // run writes (restored rows + continued rows) equals the uninterrupted
  // run's CSV byte for byte.
  const auto dags = tiny_training_set(2, 28);
  ReinforceOptions options;
  options.epochs = 4;
  options.rollouts_per_example = 2;
  const double tetris_ref = 25.0, sjf_ref = 26.5;

  const auto write_curve = [&](const std::string& path,
                               const ReinforceResult& result) {
    CsvWriter csv(path);
    csv.write("epoch", "mean_makespan", "tetris", "sjf");
    for (std::size_t e = 0; e < result.epoch_mean_makespan.size(); ++e) {
      csv.write(static_cast<long long>(e), result.epoch_mean_makespan[e],
                tetris_ref, sjf_ref);
    }
  };

  ScratchDir dir("spear_resume_csv");
  const std::string full_csv = (dir.path() / "full.csv").string();
  const std::string resumed_csv = (dir.path() / "resumed.csv").string();
  const std::string ck = (dir.path() / "ck.spearck").string();

  {
    Rng rng(29);
    Policy policy = make_tiny_policy(rng);
    ReinforceTrainer trainer(policy, dags, cap(), options, rng);
    while (!trainer.done()) trainer.run_epoch();
    write_curve(full_csv, trainer.result());
  }
  {
    Rng rng(29);
    Policy policy = make_tiny_policy(rng);
    ReinforceTrainer trainer(policy, dags, cap(), options, rng);
    trainer.run_epoch();
    trainer.run_epoch();
    ckpt::write_checkpoint_file(ck, trainer.checkpoint_state());
  }
  {
    Rng rng(29);
    Policy policy = make_tiny_policy(rng);
    ReinforceTrainer trainer(policy, dags, cap(), options, rng);
    trainer.restore(ckpt::read_checkpoint_file(ck));
    while (!trainer.done()) trainer.run_epoch();
    write_curve(resumed_csv, trainer.result());
  }
  const std::string full_bytes = read_bytes(full_csv);
  ASSERT_FALSE(full_bytes.empty());
  EXPECT_EQ(full_bytes, read_bytes(resumed_csv));
}

}  // namespace
}  // namespace spear
