// The inference fast path's correctness contract (DESIGN.md §10): tiled
// kernels, workspace forward/backward, featurize-into and batched policy
// evaluation must all be BIT-identical to the seed code paths they replace.
// Comparisons use memcmp, not EXPECT_DOUBLE_EQ, so even a -0.0/+0.0 or
// last-ulp reassociation difference fails.

#include "nn/kernels.h"

#include <cstring>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "dag/generator.h"
#include "mcts/mcts.h"
#include "nn/mlp.h"
#include "rl/policy.h"
#include "support/builders.h"

namespace spear {
namespace {

template <typename VecA, typename VecB>
bool bits_equal(const VecA& a, const VecB& b) {
  return a.size() == b.size() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

bool bits_equal(const Matrix& a, const Matrix& b) {
  return a.rows() == b.rows() && a.cols() == b.cols() &&
         bits_equal(a.data(), b.data());
}

/// Random test operand: normals with exact zeros (the seed matmul had an
/// `a == 0.0` skip branch — zeros must stay bit-neutral without it) and a
/// healthy share of negatives.
std::vector<double> random_operand(std::size_t n, Rng& rng) {
  std::vector<double> out(n);
  for (auto& x : out) {
    const double u = rng.uniform();
    x = u < 0.2 ? 0.0 : rng.normal();
  }
  return out;
}

// ---------------------------------------------------------------------------
// Tiled kernels vs the seed loops.
// ---------------------------------------------------------------------------

TEST(KernelBitIdentity, TiledMatmulMatchesSeedReference) {
  Rng rng(11);
  // Column widths straddle the tile boundary (kColTile = 64) including the
  // 1-wide and far-past-one-tile cases.
  const std::size_t col_set[] = {1, 3, 17, 63, 64, 65, 100, 256};
  const std::size_t row_set[] = {1, 2, 5, 17};
  const std::size_t inner_set[] = {1, 3, 32, 63, 65};
  for (std::size_t rows : row_set) {
    for (std::size_t inner : inner_set) {
      for (std::size_t cols : col_set) {
        const auto a = random_operand(rows * inner, rng);
        const auto b = random_operand(inner * cols, rng);
        std::vector<double> tiled(rows * cols), seed(rows * cols);
        kernels::matmul_into(a.data(), rows, inner, b.data(), cols,
                             tiled.data());
        kernels::reference_matmul_into(a.data(), rows, inner, b.data(), cols,
                                       seed.data());
        ASSERT_TRUE(bits_equal(tiled, seed))
            << rows << "x" << inner << " * " << inner << "x" << cols;
      }
    }
  }
}

TEST(KernelBitIdentity, TransposeMatmulMatchesNaive) {
  Rng rng(12);
  const std::size_t rows = 9, inner = 37, cols = 70;  // cols spans a tile
  const auto a = random_operand(rows * inner, rng);
  const auto b = random_operand(rows * cols, rng);
  std::vector<double> tiled(inner * cols, 0.0), naive(inner * cols, 0.0);
  kernels::transpose_matmul_into(a.data(), rows, inner, b.data(), cols,
                                 tiled.data());
  // Seed loop: out[k][j] accumulates over ascending i.
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t k = 0; k < inner; ++k) {
      for (std::size_t j = 0; j < cols; ++j) {
        naive[k * cols + j] += a[i * inner + k] * b[i * cols + j];
      }
    }
  }
  EXPECT_TRUE(bits_equal(tiled, naive));
}

TEST(KernelBitIdentity, MatmulTransposeMatchesNaive) {
  Rng rng(13);
  const std::size_t rows = 7, cols_a = 33, rows_b = 66;
  const auto a = random_operand(rows * cols_a, rng);
  const auto b = random_operand(rows_b * cols_a, rng);
  std::vector<double> fast(rows * rows_b, 0.0), naive(rows * rows_b, 0.0);
  kernels::matmul_transpose_into(a.data(), rows, cols_a, b.data(), rows_b,
                                 fast.data());
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t r = 0; r < rows_b; ++r) {
      double sum = 0.0;  // scalar ascending-k dot product, like the seed
      for (std::size_t k = 0; k < cols_a; ++k) {
        sum += a[i * cols_a + k] * b[r * cols_a + k];
      }
      naive[i * rows_b + r] = sum;
    }
  }
  EXPECT_TRUE(bits_equal(fast, naive));
}

TEST(KernelBitIdentity, FusedBiasReluMatchesBroadcastThenRelu) {
  Rng rng(14);
  const std::size_t rows = 5, cols = 67;
  auto m = random_operand(rows * cols, rng);
  const auto bias = random_operand(cols, rng);
  // Seed order of operations: add bias in place, copy, relu the copy.
  auto expect_pre = m;
  for (std::size_t i = 0; i < rows; ++i) {
    for (std::size_t j = 0; j < cols; ++j) expect_pre[i * cols + j] += bias[j];
  }
  auto expect_relu = expect_pre;
  for (auto& x : expect_relu) {
    if (x < 0.0) x = 0.0;
  }
  std::vector<double> relu_out(rows * cols);
  kernels::add_bias_relu(m.data(), rows, cols, bias.data(), relu_out.data());
  EXPECT_TRUE(bits_equal(m, expect_pre));
  EXPECT_TRUE(bits_equal(relu_out, expect_relu));
}

TEST(KernelBitIdentity, SparseLhsMatmulMatchesSeedReference) {
  Rng rng(15);
  // Row nonzero counts straddle the group boundaries (first-4 seed, the
  // 8-wide and 4-wide sweeps, singles): densities from all-zero rows to
  // fully dense, with inner sizes hitting every nnz % 8 remainder.
  const double zero_prob[] = {1.0, 0.9, 0.5, 0.2, 0.0};
  const std::size_t inner_set[] = {1, 2, 3, 4, 5, 7, 8, 9, 12, 17, 163};
  const std::size_t col_set[] = {1, 25, 32, 256};
  for (double p : zero_prob) {
    for (std::size_t inner : inner_set) {
      for (std::size_t cols : col_set) {
        const std::size_t rows = 3;
        std::vector<double> a(rows * inner);
        for (auto& x : a) x = rng.uniform() < p ? 0.0 : rng.normal();
        const auto b = random_operand(inner * cols, rng);
        std::vector<double> fast(rows * cols), seed(rows * cols);
        std::vector<std::int32_t> kidx(inner);
        std::vector<double> kval(inner);
        kernels::matmul_sparse_lhs_into(a.data(), rows, inner, b.data(),
                                        cols, fast.data(), kidx.data(),
                                        kval.data());
        kernels::reference_matmul_into(a.data(), rows, inner, b.data(), cols,
                                       seed.data());
        ASSERT_TRUE(bits_equal(fast, seed))
            << "p=" << p << " inner=" << inner << " cols=" << cols;
      }
    }
  }
}

TEST(KernelBitIdentity, CompressedMatmulMatchesSeedReference) {
  Rng rng(16);
  const double zero_prob[] = {1.0, 0.8, 0.5, 0.0};
  const std::size_t inner_set[] = {1, 5, 9, 13, 32, 163};
  const std::size_t col_set[] = {1, 25, 32, 256};
  for (double p : zero_prob) {
    for (std::size_t inner : inner_set) {
      for (std::size_t cols : col_set) {
        const std::size_t rows = 4;
        const std::size_t stride = inner + 3;  // strided form, like mlp's
        std::vector<double> a(rows * inner);
        for (auto& x : a) x = rng.uniform() < p ? 0.0 : rng.normal();
        std::vector<std::int32_t> kidx(rows * stride, -1);
        std::vector<double> kval(rows * stride, -1.0);
        std::vector<std::int32_t> row_nnz(rows, -1);
        kernels::compress_rows_into(a.data(), rows, inner, stride,
                                    kidx.data(), kval.data(), row_nnz.data());
        const auto b = random_operand(inner * cols, rng);
        std::vector<double> fast(rows * cols), seed(rows * cols);
        kernels::matmul_compressed_into(kidx.data(), kval.data(),
                                        row_nnz.data(), rows, stride,
                                        b.data(), cols, fast.data());
        kernels::reference_matmul_into(a.data(), rows, inner, b.data(), cols,
                                       seed.data());
        ASSERT_TRUE(bits_equal(fast, seed))
            << "p=" << p << " inner=" << inner << " cols=" << cols;
      }
    }
  }
}

TEST(KernelBitIdentity, BiasReluCompressMatchesBiasReluPlusCompress) {
  Rng rng(17);
  const std::size_t rows = 5, cols = 67;
  auto m_fused = random_operand(rows * cols, rng);
  auto m_plain = m_fused;
  const auto bias = random_operand(cols, rng);
  std::vector<double> relu_fused(rows * cols), relu_plain(rows * cols);
  std::vector<std::int32_t> kidx_fused(rows * cols), kidx_plain(rows * cols);
  std::vector<double> kval_fused(rows * cols), kval_plain(rows * cols);
  std::vector<std::int32_t> nnz_fused(rows), nnz_plain(rows);
  kernels::add_bias_relu_compress(m_fused.data(), rows, cols, bias.data(),
                                  relu_fused.data(), kidx_fused.data(),
                                  kval_fused.data(), nnz_fused.data());
  kernels::add_bias_relu(m_plain.data(), rows, cols, bias.data(),
                         relu_plain.data());
  kernels::compress_rows_into(relu_plain.data(), rows, cols, cols,
                              kidx_plain.data(), kval_plain.data(),
                              nnz_plain.data());
  EXPECT_TRUE(bits_equal(m_fused, m_plain));
  EXPECT_TRUE(bits_equal(relu_fused, relu_plain));
  EXPECT_EQ(nnz_fused, nnz_plain);
  for (std::size_t i = 0; i < rows; ++i) {
    const auto n = static_cast<std::size_t>(nnz_plain[i]);
    EXPECT_EQ(0, std::memcmp(kidx_fused.data() + i * cols,
                             kidx_plain.data() + i * cols,
                             n * sizeof(std::int32_t)));
    EXPECT_EQ(0, std::memcmp(kval_fused.data() + i * cols,
                             kval_plain.data() + i * cols,
                             n * sizeof(double)));
  }
}

TEST(KernelBitIdentity, MatrixMatmulDelegatesToTiledKernel) {
  // Satellite of the skip-branch removal: Matrix::matmul (now tiled and
  // branchless) must still equal the seed i-k-j loop with its a == 0.0
  // skip, bit for bit, on finite inputs with plenty of exact zeros.
  Rng rng(15);
  const std::size_t rows = 6, inner = 40, cols = 130;
  const auto av = random_operand(rows * inner, rng);
  const auto bv = random_operand(inner * cols, rng);
  const Matrix a = Matrix::from_rows(rows, inner, av);
  const Matrix b = Matrix::from_rows(inner, cols, bv);
  const Matrix c = a.matmul(b);
  std::vector<double> seed(rows * cols);
  kernels::reference_matmul_into(av.data(), rows, inner, bv.data(), cols,
                                 seed.data());
  EXPECT_TRUE(bits_equal(c.data(), seed));
}

// ---------------------------------------------------------------------------
// Workspace forward/backward vs the allocating seed path.
// ---------------------------------------------------------------------------

Mlp random_net(Rng& rng) { return Mlp({19, 24, 8, 5}, rng); }

Matrix random_batch(std::size_t rows, std::size_t cols, Rng& rng) {
  return Matrix::from_rows(rows, cols, random_operand(rows * cols, rng));
}

TEST(ForwardWorkspace, ForwardMatchesLegacyForward) {
  Rng rng(21);
  const Mlp net = random_net(rng);
  Mlp::ForwardWorkspace ws;
  for (std::size_t rows : {1u, 7u, 32u}) {
    const Matrix input = random_batch(rows, net.input_dim(), rng);
    const Mlp::Forward cache = net.forward(input);
    Matrix& in = net.begin_forward(ws, rows);
    std::copy(input.data().begin(), input.data().end(), in.data().begin());
    net.forward_ws(ws);
    ASSERT_TRUE(bits_equal(ws.logits(), cache.logits)) << rows << " rows";
    for (std::size_t l = 0; l < cache.pre_activations.size(); ++l) {
      ASSERT_TRUE(bits_equal(ws.pre_activations[l], cache.pre_activations[l]));
    }
  }
}

TEST(ForwardWorkspace, BackwardMatchesLegacyBackward) {
  Rng rng(22);
  const Mlp net = random_net(rng);
  Mlp::ForwardWorkspace ws;
  for (std::size_t rows : {1u, 5u, 16u}) {
    const Matrix input = random_batch(rows, net.input_dim(), rng);
    const Matrix d_logits = random_batch(rows, net.output_dim(), rng);

    Mlp::Gradients legacy = net.make_gradients();
    const Mlp::Forward cache = net.forward(input);
    net.backward(cache, d_logits, legacy);

    Mlp::Gradients fast = net.make_gradients();
    Matrix& in = net.begin_forward(ws, rows);
    std::copy(input.data().begin(), input.data().end(), in.data().begin());
    net.forward_ws(ws);
    net.backward_ws(ws, d_logits, fast);

    for (std::size_t l = 0; l < legacy.d_weights.size(); ++l) {
      ASSERT_TRUE(bits_equal(fast.d_weights[l], legacy.d_weights[l]))
          << "layer " << l << ", " << rows << " rows";
      ASSERT_TRUE(bits_equal(fast.d_bias[l], legacy.d_bias[l]));
    }
  }
}

TEST(ForwardWorkspace, ReuseAcrossBatchSizesIsAllocationFree) {
  Rng rng(23);
  const Mlp net = random_net(rng);
  Mlp::ForwardWorkspace ws;
  // Warm to the high-water batch size...
  net.begin_forward(ws, 32);
  const std::size_t cap = ws.input.data().capacity();
  // ...then cycle through smaller and equal sizes: capacity (and therefore
  // the heap) must not move, and results must still match a fresh forward.
  for (std::size_t rows : {1u, 7u, 32u, 3u, 32u}) {
    const Matrix input = random_batch(rows, net.input_dim(), rng);
    Matrix& in = net.begin_forward(ws, rows);
    ASSERT_EQ(ws.input.rows(), rows);
    std::copy(input.data().begin(), input.data().end(), in.data().begin());
    net.forward_ws(ws);
    ASSERT_TRUE(bits_equal(ws.logits(), net.forward(input).logits));
    ASSERT_EQ(ws.input.data().capacity(), cap) << rows << " rows reallocated";
  }
}

// ---------------------------------------------------------------------------
// Featurize-into and batched policy evaluation.
// ---------------------------------------------------------------------------

Policy tiny_policy(Rng& rng) {
  FeaturizerOptions options;
  options.max_ready = 4;
  options.horizon = 6;
  return Policy::make(options, 2, rng, {12});
}

SchedulingEnv tiny_env(Dag dag, std::size_t max_ready = 4) {
  EnvOptions options;
  options.max_ready = max_ready;
  return SchedulingEnv(std::make_shared<Dag>(std::move(dag)),
                       ResourceVector{1.0, 1.0}, options);
}

TEST(BatchEval, FeaturizeIntoMatchesFeaturize) {
  Rng rng(31);
  const Policy policy = tiny_policy(rng);
  SchedulingEnv env =
      tiny_env(testing::make_diamond(2, 3, 1, 2, ResourceVector{0.4, 0.4}));
  const Featurizer& f = policy.featurizer();
  while (true) {
    std::vector<double> fresh;
    f.featurize(env, fresh);
    std::vector<double> buffer(f.input_dim(2), -1.0);  // poisoned
    f.featurize_into(env, buffer.data());
    ASSERT_TRUE(bits_equal(fresh, buffer));
    if (env.done()) break;
    if (env.can_process()) {
      env.process_to_next_finish();
    } else {
      env.step(0);
    }
  }
}

TEST(BatchEval, FeaturizeCompressMatchesFeaturizePlusCompress) {
  Rng rng(33);
  const Policy policy = tiny_policy(rng);
  SchedulingEnv env =
      tiny_env(testing::make_diamond(2, 3, 1, 2, ResourceVector{0.4, 0.4}));
  const Featurizer& f = policy.featurizer();
  const std::size_t dim = f.input_dim(2);
  while (true) {
    std::vector<double> dense(dim, -1.0);
    f.featurize_into(env, dense.data());
    std::vector<std::int32_t> kidx_ref(dim, -1), kidx(dim, -1);
    std::vector<double> kval_ref(dim, -1.0), kval(dim, -1.0);
    std::int32_t nnz_ref = -1, nnz = -1;
    kernels::compress_rows_into(dense.data(), 1, dim, dim, kidx_ref.data(),
                                kval_ref.data(), &nnz_ref);
    std::vector<double> fused(dim, -1.0);
    f.featurize_compress_into(env, fused.data(), kidx.data(), kval.data(),
                              &nnz);
    ASSERT_TRUE(bits_equal(fused, dense));
    ASSERT_EQ(nnz, nnz_ref);
    ASSERT_EQ(0, std::memcmp(kidx.data(), kidx_ref.data(),
                             static_cast<std::size_t>(nnz) *
                                 sizeof(std::int32_t)));
    ASSERT_EQ(0, std::memcmp(kval.data(), kval_ref.data(),
                             static_cast<std::size_t>(nnz) * sizeof(double)));
    if (env.done()) break;
    if (env.can_process()) {
      env.process_to_next_finish();
    } else {
      env.step(0);
    }
  }
}

TEST(BatchEval, BatchedActionProbsMatchSingleRowBitwise) {
  Rng rng(32);
  const Policy policy = tiny_policy(rng);
  // A handful of genuinely different states of one episode.
  std::vector<SchedulingEnv> states;
  SchedulingEnv env = tiny_env(
      testing::make_independent(6, 3, ResourceVector{0.3, 0.3}));
  while (!env.done()) {
    states.push_back(env);
    if (env.can_schedule(0)) {
      env.step(0);
    } else {
      env.process_to_next_finish();
    }
  }
  ASSERT_GE(states.size(), 3u);

  std::vector<const SchedulingEnv*> ptrs;
  for (const auto& s : states) ptrs.push_back(&s);
  std::vector<std::vector<bool>> masks;
  std::vector<std::vector<double>> batch_probs;
  policy.action_probs_batch(ptrs.data(), ptrs.size(), masks, batch_probs);
  ASSERT_EQ(batch_probs.size(), states.size());

  for (std::size_t i = 0; i < states.size(); ++i) {
    const auto single = policy.action_probs(states[i]);
    ASSERT_TRUE(bits_equal(batch_probs[i], single)) << "state " << i;
    ASSERT_EQ(masks[i], policy.valid_output_mask(states[i]));
  }
}

TEST(BatchEval, BatchHandlesZeroAndOneStates) {
  Rng rng(33);
  const Policy policy = tiny_policy(rng);
  const SchedulingEnv env = tiny_env(
      testing::make_independent(3, 2, ResourceVector{0.3, 0.3}));
  std::vector<std::vector<bool>> masks;
  std::vector<std::vector<double>> probs;
  policy.action_probs_batch(nullptr, 0, masks, probs);
  EXPECT_TRUE(probs.empty());
  const SchedulingEnv* one = &env;
  policy.action_probs_batch(&one, 1, masks, probs);
  ASSERT_EQ(probs.size(), 1u);
  EXPECT_TRUE(bits_equal(probs[0], policy.action_probs(env)));
}

// ---------------------------------------------------------------------------
// MCTS batched expansion: same search, same schedule, same telemetry.
// ---------------------------------------------------------------------------

std::shared_ptr<DecisionPolicy> drl_guide(std::uint64_t seed) {
  Rng rng(seed);
  return std::make_shared<DrlDecisionPolicy>(
      std::make_shared<const Policy>(tiny_policy(rng)));
}

Dag batch_test_dag(std::uint64_t seed) {
  DagGeneratorOptions gen;
  gen.num_tasks = 12;
  Rng rng(seed);
  return generate_random_dag(gen, rng);
}

MctsOptions batch_test_options(bool batch, int threads = 1) {
  MctsOptions options;
  options.initial_budget = 48;
  options.min_budget = 12;
  options.seed = 5;
  options.batch_expansion = batch;
  options.num_threads = threads;
  return options;
}

void expect_same_search(const MctsScheduler::Stats& a,
                        const MctsScheduler::Stats& b) {
  EXPECT_EQ(a.decisions, b.decisions);
  EXPECT_EQ(a.forced_decisions, b.forced_decisions);
  EXPECT_EQ(a.iterations, b.iterations);
  EXPECT_EQ(a.rollouts, b.rollouts);
  EXPECT_EQ(a.nodes_expanded, b.nodes_expanded);
  EXPECT_EQ(a.env_copies, b.env_copies);
}

TEST(MctsBatch, SerialScheduleIdenticalWithBatchOnAndOff) {
  const Dag dag = batch_test_dag(77);
  const ResourceVector capacity{1.0, 1.0};

  MctsScheduler batched(batch_test_options(true), drl_guide(9));
  MctsScheduler lazy(batch_test_options(false), drl_guide(9));
  const Schedule sb = batched.schedule(dag, capacity);
  const Schedule sl = lazy.schedule(dag, capacity);

  ASSERT_EQ(sb.size(), sl.size());
  for (std::size_t i = 0; i < sb.size(); ++i) {
    EXPECT_EQ(sb.placements()[i].task, sl.placements()[i].task);
    EXPECT_EQ(sb.placements()[i].start, sl.placements()[i].start);
  }
  expect_same_search(batched.last_stats(), lazy.last_stats());
  // The batched run actually took the fused path; the lazy run never does.
  EXPECT_GT(batched.last_stats().batched_evals, 0);
  EXPECT_GE(batched.last_stats().batched_rows,
            batched.last_stats().batched_evals);
  EXPECT_EQ(lazy.last_stats().batched_evals, 0);
}

TEST(MctsBatch, ParallelScheduleIdenticalWithBatchOnAndOff) {
  const Dag dag = batch_test_dag(78);
  const ResourceVector capacity{1.0, 1.0};

  MctsScheduler batched(batch_test_options(true, 3), drl_guide(9));
  MctsScheduler lazy(batch_test_options(false, 3), drl_guide(9));
  const Schedule sb = batched.schedule(dag, capacity);
  const Schedule sl = lazy.schedule(dag, capacity);

  ASSERT_EQ(sb.size(), sl.size());
  for (std::size_t i = 0; i < sb.size(); ++i) {
    EXPECT_EQ(sb.placements()[i].task, sl.placements()[i].task);
    EXPECT_EQ(sb.placements()[i].start, sl.placements()[i].start);
  }
  expect_same_search(batched.last_stats(), lazy.last_stats());
  EXPECT_GT(batched.last_stats().batched_evals, 0);
}

TEST(MctsBatch, RandomGuideNeverTakesBatchPath) {
  // The uniform guide has no fused evaluation: batch_expansion must be a
  // no-op (this is what keeps the pure-MCTS golden CSVs byte-identical).
  const Dag dag = batch_test_dag(79);
  MctsScheduler mcts(batch_test_options(true));
  mcts.schedule(dag, ResourceVector{1.0, 1.0});
  EXPECT_EQ(mcts.last_stats().batched_evals, 0);
  EXPECT_EQ(mcts.last_stats().batched_rows, 0);
}

}  // namespace
}  // namespace spear
