#include "cluster/gantt.h"

#include <gtest/gtest.h>

#include "support/builders.h"

namespace spear {
namespace {

TEST(Gantt, EmptyScheduleRendersHeaderOnly) {
  Schedule s;
  Dag dag = DagBuilder().build();
  const auto chart = gantt_chart(s, dag);
  EXPECT_NE(chart.find("makespan 0"), std::string::npos);
}

TEST(Gantt, ChainBarsAreSequential) {
  Dag dag = testing::make_chain({3, 2});
  Schedule s;
  s.add(0, 0);
  s.add(1, 3);
  GanttOptions options;
  options.width = 10;  // 5 slots -> 1 slot per column
  const auto chart = gantt_chart(s, dag, options);
  EXPECT_NE(chart.find("makespan 5"), std::string::npos);
  // Task 0 occupies columns 0..2, task 1 columns 3..4.
  EXPECT_NE(chart.find("|###..|"), std::string::npos);
  EXPECT_NE(chart.find("|...##|"), std::string::npos);
}

TEST(Gantt, RowsOrderedByStartTime) {
  Dag dag = testing::make_independent(2, 2, ResourceVector{0.4, 0.4});
  Schedule s;
  s.add(1, 0);
  s.add(0, 2);
  const auto chart = gantt_chart(s, dag);
  EXPECT_LT(chart.find("t1"), chart.find("t0"));
}

TEST(Gantt, LongScheduleIsScaledToWidth) {
  Dag dag = testing::make_chain({200});
  Schedule s;
  s.add(0, 0);
  GanttOptions options;
  options.width = 50;
  const auto chart = gantt_chart(s, dag, options);
  EXPECT_NE(chart.find("1 col = 4 slots"), std::string::npos);
  // The row must not exceed 50 bar columns.
  const auto bar_start = chart.find('|');
  const auto bar_end = chart.find('|', bar_start + 1);
  EXPECT_LE(bar_end - bar_start - 1, 50u);
}

TEST(Utilization, FullAndIdleColumns) {
  Dag dag = testing::make_independent(2, 2, ResourceVector{0.5, 0.25});
  Schedule s;
  s.add(0, 0);
  s.add(1, 0);  // [0,2): cpu 1.0, mem 0.5
  GanttOptions options;
  options.width = 2;
  const auto chart =
      utilization_chart(s, dag, ResourceVector{1.0, 1.0}, options);
  // Both columns fully covered: cpu '9' (capped), mem '5'.
  EXPECT_NE(chart.find("res0 |99|"), std::string::npos);
  EXPECT_NE(chart.find("res1 |55|"), std::string::npos);
}

TEST(Utilization, OverCapacityMarked) {
  Dag dag = testing::make_independent(2, 1, ResourceVector{0.8, 0.2});
  Schedule s;  // deliberately invalid: both at t=0 -> cpu 1.6
  s.add(0, 0);
  s.add(1, 0);
  GanttOptions options;
  options.width = 1;
  const auto chart =
      utilization_chart(s, dag, ResourceVector{1.0, 1.0}, options);
  EXPECT_NE(chart.find("res0 |!|"), std::string::npos);
  EXPECT_NE(chart.find("res1 |4|"), std::string::npos);
}

}  // namespace
}  // namespace spear
