#include "common/csv.h"

#include <cstdio>
#include <filesystem>
#include <stdexcept>

#include <gtest/gtest.h>

namespace spear {
namespace {

class CsvFileTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = (std::filesystem::temp_directory_path() /
             ("spear_csv_test_" +
              std::to_string(::testing::UnitTest::GetInstance()->random_seed()) +
              "_" + std::to_string(counter_++)))
                .string() +
            ".csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  std::string path_;
  static int counter_;
};
int CsvFileTest::counter_ = 0;

TEST(CsvEscape, PlainFieldUnchanged) {
  EXPECT_EQ(csv_escape("hello"), "hello");
  EXPECT_EQ(csv_escape(""), "");
}

TEST(CsvEscape, CommaQuoted) { EXPECT_EQ(csv_escape("a,b"), "\"a,b\""); }

TEST(CsvEscape, QuoteDoubled) {
  EXPECT_EQ(csv_escape("say \"hi\""), "\"say \"\"hi\"\"\"");
}

TEST(CsvEscape, NewlineQuoted) {
  EXPECT_EQ(csv_escape("a\nb"), "\"a\nb\"");
}

TEST(CsvParse, SimpleRows) {
  const auto rows = parse_csv("a,b,c\n1,2,3\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b", "c"}));
  EXPECT_EQ(rows[1], (CsvRow{"1", "2", "3"}));
}

TEST(CsvParse, MissingTrailingNewline) {
  const auto rows = parse_csv("a,b\nc,d");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1], (CsvRow{"c", "d"}));
}

TEST(CsvParse, QuotedFieldWithComma) {
  const auto rows = parse_csv("\"a,b\",c\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"a,b", "c"}));
}

TEST(CsvParse, EscapedQuotes) {
  const auto rows = parse_csv("\"say \"\"hi\"\"\"\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "say \"hi\"");
}

TEST(CsvParse, EmbeddedNewlineInQuotes) {
  const auto rows = parse_csv("\"line1\nline2\",x\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], "line1\nline2");
}

TEST(CsvParse, EmptyFields) {
  const auto rows = parse_csv(",,\n");
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0], (CsvRow{"", "", ""}));
}

TEST(CsvParse, CrLfTolerated) {
  const auto rows = parse_csv("a,b\r\nc,d\r\n");
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0], (CsvRow{"a", "b"}));
}

TEST(CsvParse, EmptyInput) { EXPECT_TRUE(parse_csv("").empty()); }

TEST(CsvParse, UnterminatedQuoteThrows) {
  EXPECT_THROW(parse_csv("\"oops\n"), std::runtime_error);
}

TEST_F(CsvFileTest, WriteReadRoundTrip) {
  {
    CsvWriter writer(path_);
    writer.write("name", "value");
    writer.write("x,y", 1.5);
    writer.write("n", 42);
  }
  const auto rows = read_csv(path_);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(rows[0], (CsvRow{"name", "value"}));
  EXPECT_EQ(rows[1][0], "x,y");
  EXPECT_EQ(std::stod(rows[1][1]), 1.5);
  EXPECT_EQ(rows[2][1], "42");
}

TEST_F(CsvFileTest, DoublePrecisionSurvivesRoundTrip) {
  const double value = 0.1234567890123456789;
  {
    CsvWriter writer(path_);
    writer.write(value);
  }
  const auto rows = read_csv(path_);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_DOUBLE_EQ(std::stod(rows[0][0]), value);
}

TEST(CsvReader, MissingFileThrows) {
  EXPECT_THROW(read_csv("/nonexistent/path/file.csv"), std::runtime_error);
}

TEST(CsvWriterError, UnwritablePathThrows) {
  EXPECT_THROW(CsvWriter("/nonexistent/dir/file.csv"), std::runtime_error);
}

}  // namespace
}  // namespace spear
