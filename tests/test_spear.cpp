#include "core/spear.h"

#include <memory>

#include <gtest/gtest.h>

#include "dag/generator.h"
#include "rl/imitation.h"
#include "support/brute_force.h"
#include "support/builders.h"

namespace spear {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

/// A small shared policy (tiny network, tiny featurizer) that is cheap to
/// build per test binary run.
std::shared_ptr<const Policy> tiny_trained_policy() {
  static const auto policy = [] {
    Rng rng(42);
    FeaturizerOptions options;
    options.max_ready = 6;
    options.horizon = 8;
    Policy p = Policy::make(options, 2, rng, {24});
    DagGeneratorOptions gen;
    gen.num_tasks = 10;
    Rng dag_rng(1);
    const auto dags = generate_random_dags(gen, 4, dag_rng);
    ImitationOptions imitation;
    imitation.epochs = 15;
    imitation.optimizer.learning_rate = 1e-3;
    pretrain_on_cp(p, dags, cap(), imitation, rng);
    return std::make_shared<const Policy>(std::move(p));
  }();
  return policy;
}

TEST(Spear, NameIsSpear) {
  auto spear = make_spear_scheduler(tiny_trained_policy());
  EXPECT_EQ(spear->name(), "Spear");
  auto mcts = make_mcts_scheduler(100, 10);
  EXPECT_EQ(mcts->name(), "MCTS");
}

TEST(Spear, ProducesValidSchedules) {
  SpearOptions options;
  options.initial_budget = 40;
  options.min_budget = 10;
  auto spear = make_spear_scheduler(tiny_trained_policy(), options);
  DagGeneratorOptions gen;
  gen.num_tasks = 15;
  Rng rng(5);
  Dag dag = generate_random_dag(gen, rng);
  DagFeatures features(dag);
  const Time makespan = validated_makespan(*spear, dag, cap());
  EXPECT_GE(makespan, features.critical_path());
  EXPECT_LE(makespan, dag.total_runtime());
}

TEST(Spear, ChainAndPackingBasics) {
  SpearOptions options;
  options.initial_budget = 30;
  options.min_budget = 10;
  auto spear = make_spear_scheduler(tiny_trained_policy(), options);
  Dag chain = testing::make_chain({2, 3, 4});
  EXPECT_EQ(validated_makespan(*spear, chain, cap()), 9);
  Dag indep = testing::make_independent(4, 5, ResourceVector{0.5, 0.5});
  EXPECT_EQ(validated_makespan(*spear, indep, cap()), 10);
}

TEST(Spear, FindsOptimalOnSmallInstances) {
  DagGeneratorOptions gen;
  gen.num_tasks = 6;
  gen.max_width = 3;
  Rng rng(11);
  Dag dag = generate_random_dag(gen, rng);
  const auto optimal = testing::optimal_makespan(dag, cap());
  ASSERT_TRUE(optimal.has_value());

  SpearOptions options;
  options.initial_budget = 200;
  options.min_budget = 60;
  auto spear = make_spear_scheduler(tiny_trained_policy(), options);
  EXPECT_EQ(validated_makespan(*spear, dag, cap()), *optimal);
}

TEST(Spear, GreedyRolloutModeWorks) {
  SpearOptions options;
  options.initial_budget = 20;
  options.min_budget = 5;
  options.sample_rollouts = false;
  auto spear = make_spear_scheduler(tiny_trained_policy(), options);
  Dag dag = testing::make_independent(6, 4, ResourceVector{0.3, 0.3});
  const Time makespan = validated_makespan(*spear, dag, cap());
  EXPECT_GE(makespan, 8);  // 6 tasks x 0.3 => 3 waves of <=3 concurrent...
  EXPECT_LE(makespan, 24);
}

TEST(Spear, RespectsPolicyReadyWindow) {
  // DAG wider than the policy's ready window: must still schedule all tasks
  // through the backlog.
  auto policy = tiny_trained_policy();  // max_ready = 6
  SpearOptions options;
  options.initial_budget = 20;
  options.min_budget = 5;
  auto spear = make_spear_scheduler(policy, options);
  Dag dag = testing::make_independent(12, 2, ResourceVector{0.2, 0.2});
  const Schedule s = spear->schedule(dag, cap());
  EXPECT_EQ(s.validate(dag, cap()), std::nullopt);
}

TEST(Spear, NullPolicyThrows) {
  EXPECT_THROW(make_spear_scheduler(nullptr), std::invalid_argument);
}

TEST(TrainDefaultPolicy, ProducesWorkingPolicy) {
  SpearTrainingOptions options;
  options.num_examples = 3;
  options.tasks_per_example = 8;
  options.imitation_epochs = 2;
  options.reinforce_epochs = 2;
  options.rollouts_per_example = 2;
  Policy policy = train_default_spear_policy(options);
  // The trained policy must drive a full episode.
  DagGeneratorOptions gen;
  gen.num_tasks = 10;
  Rng rng(3);
  Dag dag = generate_random_dag(gen, rng);
  EnvOptions env_options;
  env_options.max_ready = policy.featurizer().options().max_ready;
  SchedulingEnv env(std::make_shared<Dag>(dag), cap(), env_options);
  Rng sampler(4);
  const Time makespan = policy.rollout_episode(env, sampler);
  EXPECT_GT(makespan, 0);
}

}  // namespace
}  // namespace spear
