#include "rl/imitation.h"

#include <memory>

#include <gtest/gtest.h>

#include "dag/generator.h"
#include "sched/critical_path.h"
#include "support/builders.h"

namespace spear {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

Policy make_tiny_policy(Rng& rng) {
  FeaturizerOptions options;
  options.max_ready = 4;
  options.horizon = 6;
  return Policy::make(options, 2, rng, {16});
}

std::vector<Dag> tiny_training_set(std::size_t count, std::uint64_t seed) {
  DagGeneratorOptions options;
  options.num_tasks = 10;
  Rng rng(seed);
  return generate_random_dags(options, count, rng);
}

TEST(Imitation, DemonstrationsAreWellFormed) {
  Rng rng(1);
  Policy policy = make_tiny_policy(rng);
  const auto dags = tiny_training_set(3, 2);
  const auto demos = collect_cp_demonstrations(policy, dags, cap());
  ASSERT_FALSE(demos.empty());
  for (const auto& demo : demos) {
    EXPECT_EQ(demo.features.size(), policy.net().input_dim());
    EXPECT_EQ(demo.mask.size(), policy.num_outputs());
    ASSERT_GE(demo.target_output, 0);
    ASSERT_LT(static_cast<std::size_t>(demo.target_output),
              policy.num_outputs());
    // The teacher never demonstrates an invalid action.
    EXPECT_TRUE(demo.mask[static_cast<std::size_t>(demo.target_output)]);
  }
}

TEST(Imitation, TeacherPrefersCriticalPathAmongFittingTasks) {
  // Two ready tasks that both fit; b-levels 12 vs 3: the teacher must
  // demonstrate the high-b-level one (output index of that task).
  DagBuilder builder;
  const TaskId head = builder.add_task(2, ResourceVector{0.3, 0.3});
  const TaskId tail = builder.add_task(10, ResourceVector{0.3, 0.3});
  builder.add_edge(head, tail);
  builder.add_task(3, ResourceVector{0.3, 0.3});  // lone
  Dag dag = std::move(builder).build();

  Rng rng(3);
  Policy policy = make_tiny_policy(rng);
  const auto demos = collect_cp_demonstrations(policy, {dag}, cap());
  ASSERT_FALSE(demos.empty());
  // First decision: ready = {head, lone}; CP priority of head (12) wins.
  EXPECT_EQ(demos[0].target_output, 0);
  (void)head;
}

TEST(Imitation, TrainingReducesLoss) {
  Rng rng(4);
  Policy policy = make_tiny_policy(rng);
  const auto dags = tiny_training_set(4, 5);
  ImitationOptions options;
  options.epochs = 30;
  options.optimizer.learning_rate = 1e-3;  // faster for the test
  const auto result = pretrain_on_cp(policy, dags, cap(), options, rng);
  ASSERT_EQ(result.epoch_losses.size(), 30u);
  EXPECT_LT(result.epoch_losses.back(), result.epoch_losses.front() * 0.9);
}

TEST(Imitation, TrainedPolicyImitatesTeacherGreedily) {
  // After enough supervised epochs on a single tiny DAG, the greedy policy
  // action matches the teacher on the first decision.
  DagBuilder builder;
  const TaskId head = builder.add_task(2, ResourceVector{0.3, 0.3});
  const TaskId tail = builder.add_task(10, ResourceVector{0.3, 0.3});
  builder.add_edge(head, tail);
  builder.add_task(3, ResourceVector{0.3, 0.3});
  Dag dag = std::move(builder).build();

  Rng rng(6);
  Policy policy = make_tiny_policy(rng);
  ImitationOptions options;
  options.epochs = 150;
  options.optimizer.learning_rate = 1e-2;
  pretrain_on_cp(policy, {dag}, cap(), options, rng);

  EnvOptions env_options;
  env_options.max_ready = 4;
  SchedulingEnv env(std::make_shared<Dag>(dag), cap(), env_options);
  EXPECT_EQ(policy.greedy_output(env), 0u);  // schedules the chain head
}

TEST(Imitation, ValidatesArguments) {
  Rng rng(7);
  Policy policy = make_tiny_policy(rng);
  EXPECT_THROW(train_imitation(policy, {}, {}, rng), std::invalid_argument);
  ImitationOptions bad;
  bad.batch_size = 0;
  std::vector<Demonstration> demos(1);
  demos[0].features.assign(policy.net().input_dim(), 0.0);
  demos[0].mask.assign(policy.num_outputs(), true);
  EXPECT_THROW(train_imitation(policy, demos, bad, rng),
               std::invalid_argument);
}

TEST(Imitation, DeterministicGivenSeeds) {
  const auto dags = tiny_training_set(2, 8);
  auto run = [&](std::uint64_t seed) {
    Rng rng(seed);
    Policy policy = make_tiny_policy(rng);
    ImitationOptions options;
    options.epochs = 5;
    Rng train_rng(seed + 1);
    return pretrain_on_cp(policy, dags, cap(), options, train_rng)
        .epoch_losses;
  };
  EXPECT_EQ(run(9), run(9));
}

}  // namespace
}  // namespace spear
