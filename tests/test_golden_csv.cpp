// Golden-file regression tests for the deterministic bench CSV outputs.
//
// Each test regenerates a scaled-down version of a committed bench series
// (same seeds, same search code path, deterministic columns only) and diffs
// it byte-for-byte against a fixture in tests/golden/.  Any change to the
// serial search, the RNG streams, the DAG generator, or the CSV formatter
// shows up here as a diff — the guard behind the "default runs stay
// byte-identical" contract of the observability layer (DESIGN.md §8).
//
// To regenerate the fixtures after an INTENTIONAL behavior change:
//   SPEAR_UPDATE_GOLDEN=1 ./tests/test_golden_csv

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/csv.h"
#include "common/stats.h"
#include "core/spear.h"
#include "dag/generator.h"
#include "mcts/mcts.h"

namespace spear {
namespace {

#ifndef SPEAR_GOLDEN_DIR
#error "SPEAR_GOLDEN_DIR must be defined by the build"
#endif

std::string golden_path(const std::string& name) {
  return std::string(SPEAR_GOLDEN_DIR) + "/" + name;
}

std::string temp_csv_path(const std::string& name) {
  const char* dir = std::getenv("TMPDIR");
  return std::string(dir ? dir : "/tmp") + "/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

bool update_mode() { return std::getenv("SPEAR_UPDATE_GOLDEN") != nullptr; }

/// Regenerates into a temp file, then either refreshes the fixture
/// (SPEAR_UPDATE_GOLDEN=1) or asserts byte equality against it.
template <typename Generate>
void check_golden(const std::string& name, Generate&& generate) {
  const std::string actual_path = temp_csv_path("spear_golden_" + name);
  generate(actual_path);
  const std::string actual = read_file(actual_path);
  std::remove(actual_path.c_str());
  ASSERT_FALSE(actual.empty()) << "generator wrote nothing for " << name;

  if (update_mode()) {
    std::ofstream out(golden_path(name), std::ios::binary);
    ASSERT_TRUE(out) << "cannot write fixture " << golden_path(name);
    out << actual;
    return;
  }
  const std::string expected = read_file(golden_path(name));
  ASSERT_FALSE(expected.empty())
      << "missing fixture " << golden_path(name)
      << " — run with SPEAR_UPDATE_GOLDEN=1 to create it";
  EXPECT_EQ(expected, actual)
      << "regenerated " << name << " differs from the committed fixture; "
      << "if the change is intentional, refresh with SPEAR_UPDATE_GOLDEN=1";
}

const ResourceVector kCapacity{1.0, 1.0};

std::vector<Dag> workload(std::size_t jobs, std::size_t tasks,
                          std::uint64_t seed) {
  DagGeneratorOptions options;
  options.num_tasks = tasks;
  Rng rng(seed);
  return generate_random_dags(options, jobs, rng);
}

TEST(GoldenCsv, Fig7aMctsBudgetSmallScale) {
  // bench_fig7a_mcts_budget at 3 jobs x 12 tasks, budgets {25, 50}; same
  // workload seed (7) and search seed (42) as the bench defaults.
  check_golden("fig7a_mcts_budget_small.csv", [](const std::string& path) {
    const auto dags = workload(3, 12, 7);
    CsvWriter csv(path);
    csv.write("budget", "average_makespan");
    for (const std::int64_t budget : {25, 50}) {
      std::vector<double> makespans;
      for (const auto& dag : dags) {
        auto mcts = make_mcts_scheduler(budget, /*min_budget=*/5);
        makespans.push_back(
            static_cast<double>(validated_makespan(*mcts, dag, kCapacity)));
      }
      csv.write(static_cast<long long>(budget), mean(makespans));
    }
  });
}

TEST(GoldenCsv, AblationUcbSmallScale) {
  // bench_ablation_ucb at 3 jobs x 12 tasks, budget 40, workload seed 13.
  check_golden("ablation_ucb_small.csv", [](const std::string& path) {
    const auto dags = workload(3, 12, 13);
    MctsOptions max_options;
    max_options.initial_budget = 40;
    max_options.min_budget = 10;
    MctsOptions mean_options = max_options;
    mean_options.max_backprop = false;
    MctsScheduler with_max(max_options);
    MctsScheduler with_mean(mean_options);

    CsvWriter csv(path);
    csv.write("job", "max_backprop", "mean_backprop");
    for (std::size_t j = 0; j < dags.size(); ++j) {
      const Time a = validated_makespan(with_max, dags[j], kCapacity);
      const Time b = validated_makespan(with_mean, dags[j], kCapacity);
      csv.write(static_cast<long long>(j), static_cast<long long>(a),
                static_cast<long long>(b));
    }
  });
}

TEST(GoldenCsv, AblationBudgetDecaySmallScale) {
  // bench_ablation_budget_decay at 3 jobs x 12 tasks, budget 60 -> 15,
  // workload seed 14 — deterministic columns only (no wall-clock seconds).
  check_golden("ablation_budget_decay_small.csv",
               [](const std::string& path) {
    const auto dags = workload(3, 12, 14);
    MctsOptions decayed;
    decayed.initial_budget = 60;
    decayed.min_budget = 15;
    MctsOptions flat = decayed;
    flat.decay_budget = false;
    MctsScheduler with_decay(decayed);
    MctsScheduler without_decay(flat);

    CsvWriter csv(path);
    csv.write("job", "decayed_makespan", "decayed_rollouts",
              "flat_makespan", "flat_rollouts");
    for (std::size_t j = 0; j < dags.size(); ++j) {
      const Time a = validated_makespan(with_decay, dags[j], kCapacity);
      const auto ar = with_decay.last_stats().rollouts;
      const Time b = validated_makespan(without_decay, dags[j], kCapacity);
      const auto br = without_decay.last_stats().rollouts;
      csv.write(static_cast<long long>(j), static_cast<long long>(a), ar,
                static_cast<long long>(b), br);
    }
  });
}

}  // namespace
}  // namespace spear
