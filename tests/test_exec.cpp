// Online execution engine (DESIGN.md §14): perturbation determinism, the
// open-loop / repair-ladder replay semantics, straggler speculation with
// first-finish-wins cancellation, capacity-loss gating, the residual-DAG
// re-search entry point, and the property tests the ISSUE demands:
// repaired schedules always validate (dependency order, capacity, attempt
// accounting) across a seed sweep, the engine's realized makespan equals
// the event-log replay makespan exactly, and the whole pipeline is
// deterministic — same seed => byte-identical event logs, 1 vs 4 re-search
// threads => identical repair decisions.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

#include "dag/generator.h"
#include "env/env.h"
#include "exec/engine.h"
#include "exec/perturb.h"
#include "mcts/mcts.h"
#include "sched/critical_path.h"
#include "support/builders.h"

namespace spear::exec {
namespace {

const ResourceVector kCapacity{1.0, 1.0};

Dag random_dag(std::size_t tasks, std::uint64_t seed) {
  DagGeneratorOptions options;
  options.num_tasks = tasks;
  Rng rng(seed);
  return generate_random_dag(options, rng);
}

Schedule plan_for(const Dag& dag) {
  auto planner = make_critical_path_scheduler();
  Schedule plan = planner->schedule(dag, kCapacity);
  EXPECT_EQ(plan.validate(dag, kCapacity), std::nullopt);
  return plan;
}

// --- RuntimePerturber --------------------------------------------------

TEST(ExecPerturb, DeterministicPureFunctionOfSeedTaskAttempt) {
  PerturbOptions options;
  options.seed = 7;
  const RuntimePerturber a(options);
  const RuntimePerturber b(options);
  for (TaskId task = 0; task < 50; ++task) {
    for (int attempt = 0; attempt < 3; ++attempt) {
      EXPECT_EQ(a.multiplier(task, attempt), b.multiplier(task, attempt));
    }
  }
  // Attempts draw independently (speculation relies on a fresh draw).
  EXPECT_NE(a.multiplier(0, 0), a.multiplier(0, 1));
  // Seeds decorrelate.
  PerturbOptions other = options;
  other.seed = 8;
  EXPECT_NE(RuntimePerturber(other).multiplier(0, 0), a.multiplier(0, 0));
}

TEST(ExecPerturb, MultiplierMeanNearOneWithoutStragglers) {
  PerturbOptions options;
  options.sigma = 0.4;
  options.straggler_rate = 0.0;
  const RuntimePerturber perturber(options);
  double sum = 0.0;
  const int n = 4000;
  for (int i = 0; i < n; ++i) sum += perturber.multiplier(i, 0);
  EXPECT_NEAR(sum / n, 1.0, 0.05);
}

TEST(ExecPerturb, StragglersStretchPastFactorAndCap) {
  PerturbOptions options;
  options.sigma = 0.0;
  options.straggler_rate = 1.0;  // every attempt straggles
  options.straggler_factor = 4.0;
  const RuntimePerturber perturber(options);
  for (TaskId t = 0; t < 200; ++t) {
    const double m = perturber.multiplier(t, 0);
    EXPECT_GE(m, 4.0);
    EXPECT_LE(m, options.max_multiplier);
  }
}

TEST(ExecPerturb, ValidatesOptions) {
  PerturbOptions bad;
  bad.sigma = -1.0;
  EXPECT_THROW(RuntimePerturber{bad}, std::invalid_argument);
  bad = {};
  bad.straggler_rate = 1.5;
  EXPECT_THROW(RuntimePerturber{bad}, std::invalid_argument);
  bad = {};
  bad.straggler_factor = 0.5;
  EXPECT_THROW(RuntimePerturber{bad}, std::invalid_argument);
}

// --- Engine basics -----------------------------------------------------

TEST(ExecEngine, ExactReplayWhenRealizedMatchesEstimates) {
  const Dag dag = random_dag(20, 3);
  const Schedule plan = plan_for(dag);
  ExecOptions options;
  options.realized = [](const Task& task, int) { return task.runtime; };
  ExecutionEngine engine(std::make_shared<Dag>(dag), kCapacity, options);
  const ExecResult result = engine.run(plan);
  EXPECT_EQ(result.stats.surprises, 0);
  EXPECT_EQ(result.stats.local_repairs, 0);
  EXPECT_EQ(result.stats.researches, 0);
  EXPECT_EQ(validate_events(dag, kCapacity, result.events), std::nullopt);
  // A work-conserving replay of an exact plan can only match or beat it.
  EXPECT_LE(result.makespan, plan.makespan(dag));
}

TEST(ExecEngine, OpenLoopHonorsPlannedStarts) {
  // Chain 5 -> 5; give the plan artificial slack by replaying a plan from
  // a cluster that serializes them anyway.
  const Dag dag = testing::make_chain({5, 5});
  Schedule plan;
  plan.add(0, 0);
  plan.add(1, 20);  // planned far later than the dependency requires
  ExecOptions options;
  options.repair = false;
  options.speculate = false;
  options.realized = [](const Task& task, int) { return task.runtime; };
  ExecutionEngine engine(std::make_shared<Dag>(dag), kCapacity, options);
  const ExecResult result = engine.run(plan);
  // Open loop waits for the planned start; the ladder would start at t=5.
  EXPECT_EQ(result.makespan, 25);
  ExecOptions ladder = options;
  ladder.repair = true;
  ExecutionEngine repaired(std::make_shared<Dag>(dag), kCapacity, ladder);
  EXPECT_EQ(repaired.run(plan).makespan, 10);
}

TEST(ExecEngine, LadderNoWorseThanOpenLoopAcrossSeeds) {
  const Dag dag = random_dag(24, 11);
  const Schedule plan = plan_for(dag);
  Time ladder_total = 0, open_total = 0;
  for (std::uint64_t seed = 1; seed <= 8; ++seed) {
    ExecOptions options;
    options.perturb.sigma = 0.6;
    options.perturb.straggler_rate = 0.15;
    options.perturb.seed = seed;
    options.seed = seed;
    options.repair = false;
    options.speculate = false;
    ExecutionEngine open(std::make_shared<Dag>(dag), kCapacity, options);
    options.repair = true;
    options.speculate = true;
    ExecutionEngine ladder(std::make_shared<Dag>(dag), kCapacity, options);
    open_total += open.run(plan).makespan;
    ladder_total += ladder.run(plan).makespan;
  }
  EXPECT_LT(ladder_total, open_total);
}

// --- Speculation -------------------------------------------------------

TEST(ExecEngine, SpeculationDuplicateWinsAndLoserIsCancelled) {
  // One task, estimate 10.  Attempt 0 realizes 100 (a straggler), the
  // speculative attempt 1 realizes 5.  Trigger fires at 2 x 10 = 20, the
  // duplicate wins at t=25, the straggler is cancelled at the same instant.
  const Dag dag = testing::make_independent(1, 10);
  Schedule plan;
  plan.add(0, 0);
  ExecOptions options;
  options.realized = [](const Task&, int attempt) {
    return attempt == 0 ? Time{100} : Time{5};
  };
  options.speculation_factor = 2.0;
  ExecutionEngine engine(std::make_shared<Dag>(dag), kCapacity, options);
  const ExecResult result = engine.run(plan);
  EXPECT_EQ(result.makespan, 25);
  EXPECT_EQ(result.stats.speculations, 1);
  EXPECT_EQ(result.stats.speculation_wins, 1);
  EXPECT_EQ(result.stats.cancellations, 1);
  EXPECT_EQ(validate_events(dag, kCapacity, result.events), std::nullopt);
  // Event shape: start(0), speculate(1)@20, finish(1)@25, cancel(0)@25.
  ASSERT_EQ(result.events.size(), 4u);
  EXPECT_EQ(result.events[1].kind, EventKind::kSpeculate);
  EXPECT_EQ(result.events[1].time, 20);
  EXPECT_EQ(result.events[2].kind, EventKind::kFinish);
  EXPECT_EQ(result.events[2].attempt, 1);
  EXPECT_EQ(result.events[3].kind, EventKind::kCancel);
  EXPECT_EQ(result.events[3].attempt, 0);
  EXPECT_EQ(result.events[3].time, 25);
}

TEST(ExecEngine, SpeculationRespectsCapacity) {
  // The duplicate would need 0.6 CPU on top of the straggler's 0.6 — it
  // must NOT launch while the original still holds its slot.
  const Dag dag = testing::make_independent(1, 10, ResourceVector{0.6, 0.2});
  Schedule plan;
  plan.add(0, 0);
  ExecOptions options;
  options.realized = [](const Task&, int attempt) {
    return attempt == 0 ? Time{100} : Time{5};
  };
  ExecutionEngine engine(std::make_shared<Dag>(dag), kCapacity, options);
  const ExecResult result = engine.run(plan);
  EXPECT_EQ(result.stats.speculations, 0);
  EXPECT_EQ(result.makespan, 100);
  EXPECT_EQ(validate_events(dag, kCapacity, result.events), std::nullopt);
}

// --- Capacity-loss windows --------------------------------------------

TEST(ExecEngine, CapacityLossWindowGatesDispatch) {
  FaultOptions fault_options;
  fault_options.num_loss_windows = 1;
  fault_options.loss_fraction = 1.0;  // the whole cluster
  fault_options.loss_window_length = 50;
  fault_options.loss_horizon = 50;  // the window covers [0, 50)
  fault_options.seed = 1;
  auto faults = std::make_shared<FaultInjector>(fault_options, kCapacity);
  ASSERT_FALSE(faults->loss_windows().empty());
  const Time window_end = faults->loss_windows().front().end;

  const Dag dag = testing::make_independent(2, 5);
  Schedule plan;
  plan.add(0, 0);
  plan.add(1, 0);
  ExecOptions options;
  options.realized = [](const Task& task, int) { return task.runtime; };
  options.faults = faults;
  ExecutionEngine engine(std::make_shared<Dag>(dag), kCapacity, options);
  const ExecResult result = engine.run(plan);
  // Nothing can start before the window lifts.
  for (const ExecEvent& e : result.events) {
    if (e.kind == EventKind::kStart) {
      EXPECT_GE(e.time, window_end);
    }
  }
  EXPECT_EQ(result.makespan, window_end + 5);
  EXPECT_EQ(validate_events(dag, kCapacity, result.events, faults.get()),
            std::nullopt);
}

// --- Property tests (satellite: seed sweep) ---------------------------

TEST(ExecProperty, RepairedSchedulesValidateAcrossSeedSweep) {
  const Dag dag = random_dag(30, 17);
  const Schedule plan = plan_for(dag);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    ExecOptions options;
    options.perturb.sigma = 0.7;
    options.perturb.straggler_rate = 0.2;
    options.perturb.seed = seed;
    options.seed = seed;
    options.research_cooldown = 2;
    options.research_factor = 0.5;
    ExecutionEngine engine(std::make_shared<Dag>(dag), kCapacity, options);
    const ExecResult result = engine.run(plan);
    const auto why = validate_events(dag, kCapacity, result.events);
    ASSERT_EQ(why, std::nullopt) << "seed " << seed << ": " << *why;
    // Realized makespan equals the event-log replay makespan EXACTLY.
    EXPECT_EQ(result.makespan, replay_makespan(result.events))
        << "seed " << seed;
  }
}

TEST(ExecProperty, EngineScheduleValidatesUnderFaultInjectorDurations) {
  // Cross-validation with the fault layer: realized durations taken from
  // the injector's own (straggler-stretched) attempt outcomes, speculation
  // off => the rebuilt Schedule satisfies validate_under_faults, the
  // strictest existing checker (occupancy grid + attempt accounting).
  FaultOptions fault_options;
  fault_options.straggler_rate = 0.3;
  fault_options.straggler_factor = 3.0;
  fault_options.seed = 5;
  auto faults = std::make_shared<FaultInjector>(fault_options, kCapacity);

  const Dag dag = random_dag(25, 23);
  const Schedule plan = plan_for(dag);
  ExecOptions options;
  options.realized = [&faults](const Task& task, int attempt) {
    return faults->attempt_outcome(task, attempt).duration;
  };
  options.speculate = false;  // duplicates are not a fault-layer concept
  ExecutionEngine engine(std::make_shared<Dag>(dag), kCapacity, options);
  const ExecResult result = engine.run(plan);
  const Schedule rebuilt = schedule_from_events(result.events);
  const auto why = rebuilt.validate_under_faults(dag, kCapacity, *faults);
  EXPECT_EQ(why, std::nullopt) << *why;
  EXPECT_EQ(rebuilt.makespan(dag), result.makespan);
}

// --- Determinism -------------------------------------------------------

TEST(ExecDeterminism, SameSeedYieldsByteIdenticalEventLogs) {
  const Dag dag = random_dag(28, 31);
  const Schedule plan = plan_for(dag);
  ExecOptions options;
  options.perturb.sigma = 0.7;
  options.perturb.straggler_rate = 0.2;
  options.perturb.seed = 9;
  options.seed = 9;
  options.research_cooldown = 2;
  options.research_factor = 0.5;
  ExecutionEngine a(std::make_shared<Dag>(dag), kCapacity, options);
  ExecutionEngine b(std::make_shared<Dag>(dag), kCapacity, options);
  const ExecResult ra = a.run(plan);
  const ExecResult rb = b.run(plan);
  EXPECT_EQ(format_events(ra.events), format_events(rb.events));
  EXPECT_EQ(ra.makespan, rb.makespan);
}

TEST(ExecDeterminism, ResearchThreadCountDoesNotChangeRepairDecisions) {
  // Leaf-mode re-search with iteration budgets is bit-identical across
  // worker counts (PR 6 contract), so the ENTIRE event log — including
  // which repairs fired and the final makespan — matches at 1 vs 4
  // threads.  Force plenty of re-searches to make the comparison real.
  const Dag dag = random_dag(30, 41);
  const Schedule plan = plan_for(dag);
  ExecOptions options;
  options.perturb.sigma = 0.8;
  options.perturb.straggler_rate = 0.25;
  options.perturb.seed = 13;
  options.seed = 13;
  options.research_cooldown = 0;
  options.research_factor = 0.3;
  options.research_min_pending = 2;
  options.research_threads = 1;
  ExecutionEngine one(std::make_shared<Dag>(dag), kCapacity, options);
  options.research_threads = 4;
  ExecutionEngine four(std::make_shared<Dag>(dag), kCapacity, options);
  const ExecResult r1 = one.run(plan);
  const ExecResult r4 = four.run(plan);
  EXPECT_GT(r1.stats.researches, 0);
  EXPECT_EQ(format_events(r1.events), format_events(r4.events));
  EXPECT_EQ(r1.makespan, r4.makespan);
}

// --- Residual-DAG re-search entry point --------------------------------

TEST(ExecResearch, ScheduleEnvResumesFromOccupancy) {
  // Two preloaded sources (already running, 4 slots left each) and two
  // pending children.  The search must resume against the busy cluster:
  // preloaded tasks appear as t=0 placements and children start only after
  // their parents' residual work completes.
  DagBuilder builder(2);
  const TaskId r0 = builder.add_task(4, ResourceVector{0.4, 0.4});
  const TaskId r1 = builder.add_task(4, ResourceVector{0.4, 0.4});
  const TaskId c0 = builder.add_task(3, ResourceVector{0.5, 0.5});
  const TaskId c1 = builder.add_task(3, ResourceVector{0.5, 0.5});
  builder.add_edge(r0, c0);
  builder.add_edge(r1, c1);
  auto dag = std::make_shared<Dag>(std::move(builder).build());

  EnvOptions env_options;
  env_options.max_ready = 4;
  env_options.initial_running = {r0, r1};
  SchedulingEnv env(dag, kCapacity, env_options);
  EXPECT_TRUE(env.cluster().busy());

  MctsOptions mcts_options;
  mcts_options.initial_budget = 64;
  mcts_options.min_budget = 16;
  MctsScheduler mcts(mcts_options,
                     std::make_shared<HeuristicDecisionPolicy>());
  const Schedule schedule = mcts.schedule_env(std::move(env));
  EXPECT_EQ(schedule.validate(*dag, kCapacity), std::nullopt);
  EXPECT_EQ(schedule.start_of(r0), 0);
  EXPECT_EQ(schedule.start_of(r1), 0);
  EXPECT_GE(schedule.start_of(c0), 4);
  EXPECT_GE(schedule.start_of(c1), 4);
  EXPECT_EQ(schedule.makespan(*dag), 7);  // both children fit side by side
}

TEST(ExecResearch, InitialRunningRejectsNonSources) {
  const Dag chain = testing::make_chain({5, 5});
  EnvOptions env_options;
  env_options.initial_running = {1};  // has an unfinished parent
  EXPECT_THROW(SchedulingEnv(std::make_shared<Dag>(chain), kCapacity,
                             env_options),
               std::invalid_argument);
}

// --- Event-log utilities ----------------------------------------------

TEST(ExecEvents, FormatIsStableAndValidatorCatchesViolations) {
  const std::vector<ExecEvent> events = {
      {0, EventKind::kStart, 0, 0, 7},
      {7, EventKind::kFinish, 0, 0, 2},
  };
  EXPECT_EQ(format_events(events),
            "0 start task=0 attempt=0 value=7\n"
            "7 finish task=0 attempt=0 value=2\n");
  const Dag dag = testing::make_chain({5, 5});
  // Task 1 never ran.
  EXPECT_NE(validate_events(dag, kCapacity, events), std::nullopt);
  // Dependency violation: child starts before its parent finishes.
  const std::vector<ExecEvent> bad = {
      {0, EventKind::kStart, 0, 0, 7},
      {3, EventKind::kStart, 1, 0, 5},
      {7, EventKind::kFinish, 0, 0, 2},
      {8, EventKind::kFinish, 1, 0, 3},
  };
  EXPECT_NE(validate_events(dag, kCapacity, bad), std::nullopt);
}

}  // namespace
}  // namespace spear::exec
