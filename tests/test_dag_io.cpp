#include "dag/io.h"

#include <cstdio>
#include <stdexcept>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dag/gallery.h"
#include "dag/generator.h"
#include "support/builders.h"

namespace spear {
namespace {

TEST(DagIo, RoundTripPreservesStructure) {
  Rng rng(1);
  DagGeneratorOptions options;
  options.num_tasks = 30;
  const Dag original = generate_random_dag(options, rng);
  const Dag loaded = dag_from_text(dag_to_text(original));

  ASSERT_EQ(loaded.num_tasks(), original.num_tasks());
  ASSERT_EQ(loaded.num_edges(), original.num_edges());
  for (const auto& t : original.tasks()) {
    EXPECT_EQ(loaded.task(t.id).runtime, t.runtime);
    EXPECT_TRUE(loaded.task(t.id).demand == t.demand);
    EXPECT_EQ(loaded.children(t.id), original.children(t.id));
  }
}

TEST(DagIo, RoundTripMotivatingExample) {
  const Dag original = motivating_example_dag();
  const Dag loaded = dag_from_text(dag_to_text(original));
  ASSERT_EQ(loaded.num_tasks(), original.num_tasks());
  EXPECT_EQ(loaded.num_edges(), original.num_edges());
  EXPECT_EQ(loaded.task(4).name, "t4");
}

TEST(DagIo, ParsesHandAuthoredInput) {
  const Dag dag = dag_from_text(
      "# a job\n"
      "dims 2\n"
      "task map0 5 0.5 0.25\n"
      "task map1 6 0.5 0.25\n"
      "\n"
      "task reduce 9 0.75 0.5\n"
      "edge map0 reduce\n"
      "edge map1 reduce\n");
  ASSERT_EQ(dag.num_tasks(), 3u);
  EXPECT_EQ(dag.num_edges(), 2u);
  EXPECT_EQ(dag.task(0).name, "map0");
  EXPECT_EQ(dag.task(2).runtime, 9);
  EXPECT_DOUBLE_EQ(dag.task(2).demand[kCpu], 0.75);
  EXPECT_EQ(dag.parents(2).size(), 2u);
}

TEST(DagIo, DefaultsToTwoDims) {
  const Dag dag = dag_from_text("task a 3 0.1 0.2\n");
  EXPECT_EQ(dag.resource_dims(), 2u);
}

TEST(DagIo, UnnamedTasksGetGeneratedNames) {
  Dag dag = testing::make_chain({2, 3});
  const auto text = dag_to_text(dag);
  EXPECT_NE(text.find("task t0 2"), std::string::npos);
  EXPECT_NE(text.find("edge t0 t1"), std::string::npos);
}

TEST(DagIo, RejectsMalformedInput) {
  EXPECT_THROW(dag_from_text("bogus line\n"), std::runtime_error);
  EXPECT_THROW(dag_from_text("task a\n"), std::runtime_error);
  EXPECT_THROW(dag_from_text("task a 3 0.1\n"), std::runtime_error);  // 2 dims
  EXPECT_THROW(dag_from_text("dims 0\n"), std::runtime_error);
  EXPECT_THROW(dag_from_text("dims 99\n"), std::runtime_error);
  EXPECT_THROW(dag_from_text("task a 3 0.1 0.1\ndims 2\n"),
               std::runtime_error);  // dims after tasks
  EXPECT_THROW(dag_from_text("task a 3 0.1 0.1\ntask a 4 0.1 0.1\n"),
               std::runtime_error);  // duplicate name
  EXPECT_THROW(dag_from_text("edge a b\n"), std::runtime_error);
}

TEST(DagIo, RejectsNonFiniteDemands) {
  // "task t 5 nan nan" must never produce a DAG: depending on the standard
  // library, either istream extraction rejects the token (runtime_error with
  // a line number) or the parsed NaN/Inf reaches DagBuilder::add_task, whose
  // finiteness check throws invalid_argument.  Both derive from the bases
  // asserted here; what matters is that no non-finite demand gets through.
  EXPECT_THROW(dag_from_text("task t 5 nan nan\n"), std::exception);
  EXPECT_THROW(dag_from_text("task t 5 inf 0.1\n"), std::exception);
  EXPECT_THROW(dag_from_text("task t 5 0.1 -inf\n"), std::exception);
  // The builder-side check is what guards programmatic construction (and any
  // parser change): see DagBuilder.RejectsNonFiniteDemand.
}

TEST(DagIo, RejectsGraphViolations) {
  // Cycle through named edges -> DagBuilder throws invalid_argument.
  EXPECT_THROW(dag_from_text("task a 1 0.1 0.1\n"
                             "task b 1 0.1 0.1\n"
                             "edge a b\nedge b a\n"),
               std::invalid_argument);
  EXPECT_THROW(dag_from_text("task a 0 0.1 0.1\n"), std::invalid_argument);
}

TEST(DagIo, FileRoundTrip) {
  const std::string path = ::testing::TempDir() + "/spear_dag_io_test.txt";
  const Dag dag = motivating_example_dag();
  save_dag(dag, path);
  const Dag loaded = load_dag(path);
  EXPECT_EQ(loaded.num_tasks(), dag.num_tasks());
  EXPECT_EQ(loaded.num_edges(), dag.num_edges());
  std::remove(path.c_str());
}

TEST(DagIo, MissingFileThrows) {
  EXPECT_THROW(load_dag("/nonexistent/dag.txt"), std::runtime_error);
  Dag dag = testing::make_chain({1});
  EXPECT_THROW(save_dag(dag, "/nonexistent/dir/dag.txt"), std::runtime_error);
}

}  // namespace
}  // namespace spear
