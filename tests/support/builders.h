// Shared DAG construction helpers for tests.

#pragma once

#include <vector>

#include "dag/dag.h"

namespace spear::testing {

/// A linear chain t0 -> t1 -> ... with the given runtimes; every task
/// demands `demand`.
inline Dag make_chain(const std::vector<Time>& runtimes,
                      ResourceVector demand = ResourceVector{0.5, 0.5}) {
  DagBuilder builder(demand.dims());
  TaskId prev = kInvalidTask;
  for (Time rt : runtimes) {
    const TaskId id = builder.add_task(rt, demand);
    if (prev != kInvalidTask) builder.add_edge(prev, id);
    prev = id;
  }
  return std::move(builder).build();
}

/// n independent tasks, all with the same runtime and demand.
inline Dag make_independent(std::size_t n, Time runtime,
                            ResourceVector demand = ResourceVector{0.5, 0.5}) {
  DagBuilder builder(demand.dims());
  for (std::size_t i = 0; i < n; ++i) builder.add_task(runtime, demand);
  return std::move(builder).build();
}

/// Diamond: a -> {b, c} -> d.
inline Dag make_diamond(Time ra, Time rb, Time rc, Time rd,
                        ResourceVector demand = ResourceVector{0.4, 0.4}) {
  DagBuilder builder(demand.dims());
  const TaskId a = builder.add_task(ra, demand, "a");
  const TaskId b = builder.add_task(rb, demand, "b");
  const TaskId c = builder.add_task(rc, demand, "c");
  const TaskId d = builder.add_task(rd, demand, "d");
  builder.add_edge(a, b);
  builder.add_edge(a, c);
  builder.add_edge(b, d);
  builder.add_edge(c, d);
  return std::move(builder).build();
}

}  // namespace spear::testing
