// Test oracle: exact optimal makespan by exhaustive branch-and-bound over
// the same decision space the schedulers search (schedule a fitting ready
// task / process to the next completion).  Exponential — only for tiny DAGs
// in tests.

#pragma once

#include <algorithm>
#include <limits>
#include <memory>
#include <optional>

#include "env/env.h"

namespace spear::testing {

namespace detail {

struct BnbState {
  Time best = std::numeric_limits<Time>::max();
  std::int64_t nodes = 0;
  std::int64_t node_limit = 0;
  bool exhausted = false;
};

/// Max b-level over unfinished tasks: no schedule can finish before
/// now + that chain.
inline Time lower_bound(const SchedulingEnv& env) {
  // Remaining critical path from any ready or running task is bounded below
  // by the longest b-level among ready tasks; a coarse but sound bound.
  Time bound = env.cluster().current_makespan();
  for (TaskId t : env.ready()) {
    bound = std::max(bound, env.now() + env.features().b_level(t));
  }
  return bound;
}

inline void search(const SchedulingEnv& env, BnbState& state) {
  if (++state.nodes > state.node_limit) {
    state.exhausted = true;
    return;
  }
  if (env.done()) {
    state.best = std::min(state.best, env.makespan());
    return;
  }
  if (lower_bound(env) >= state.best) return;  // prune

  for (int action : env.valid_actions()) {
    SchedulingEnv child = env;
    if (action == SchedulingEnv::kProcessAction) {
      child.process_to_next_finish();
    } else {
      child.step(action);
    }
    search(child, state);
    if (state.exhausted) return;
  }
}

}  // namespace detail

/// Optimal makespan, or nullopt if the search exceeded `node_limit` states.
inline std::optional<Time> optimal_makespan(const Dag& dag,
                                            const ResourceVector& capacity,
                                            std::int64_t node_limit =
                                                2'000'000) {
  EnvOptions options;
  options.max_ready = std::max<std::size_t>(dag.num_tasks(), 1);
  SchedulingEnv env(std::make_shared<Dag>(dag), capacity, options);
  detail::BnbState state;
  state.node_limit = node_limit;
  detail::search(env, state);
  if (state.exhausted || state.best == std::numeric_limits<Time>::max()) {
    return std::nullopt;
  }
  return state.best;
}

}  // namespace spear::testing
