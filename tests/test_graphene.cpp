#include "sched/graphene.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "dag/generator.h"
#include "sched/sjf.h"
#include "support/builders.h"

namespace spear {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

TEST(Graphene, Name) {
  EXPECT_EQ(make_graphene_scheduler()->name(), "Graphene");
}

TEST(Graphene, RejectsEmptyThresholds) {
  GrapheneOptions options;
  options.thresholds.clear();
  EXPECT_THROW(make_graphene_scheduler(options), std::invalid_argument);
}

TEST(Graphene, SingleTask) {
  auto g = make_graphene_scheduler();
  Dag dag = testing::make_chain({7});
  EXPECT_EQ(validated_makespan(*g, dag, cap()), 7);
}

TEST(Graphene, ChainIsSequential) {
  auto g = make_graphene_scheduler();
  Dag dag = testing::make_chain({2, 3, 4});
  EXPECT_EQ(validated_makespan(*g, dag, cap()), 9);
}

TEST(Graphene, PacksIndependentTasks) {
  auto g = make_graphene_scheduler();
  Dag dag = testing::make_independent(4, 5, ResourceVector{0.5, 0.5});
  EXPECT_EQ(validated_makespan(*g, dag, cap()), 10);
}

TEST(GrapheneTaskOrder, IsAPermutation) {
  Rng rng(3);
  DagGeneratorOptions options;
  options.num_tasks = 30;
  Dag dag = generate_random_dag(options, rng);
  for (const bool backward : {false, true}) {
    auto order = graphene_task_order(dag, cap(), 0.4, backward);
    ASSERT_EQ(order.size(), dag.num_tasks());
    std::sort(order.begin(), order.end());
    for (std::size_t i = 0; i < order.size(); ++i) {
      EXPECT_EQ(order[i], static_cast<TaskId>(i));
    }
  }
}

TEST(GrapheneTaskOrder, ThresholdOneStillCoversLongestTask) {
  // cutoff = max runtime: at least the longest task is troublesome.
  Dag dag = testing::make_independent(3, 10, ResourceVector{0.2, 0.2});
  const auto order = graphene_task_order(dag, cap(), 1.0, false);
  EXPECT_EQ(order.size(), 3u);
}

TEST(GrapheneTaskOrder, ForwardRespectsVirtualDependencyOrderForNonTroublesome) {
  // With a tiny threshold every task is troublesome -> order is by runtime
  // descending within the virtual packing.
  DagBuilder builder;
  const TaskId small1 = builder.add_task(2, ResourceVector{0.9, 0.9});
  const TaskId big = builder.add_task(9, ResourceVector{0.9, 0.9});
  const TaskId small2 = builder.add_task(3, ResourceVector{0.9, 0.9});
  Dag dag = std::move(builder).build();
  const auto order = graphene_task_order(dag, cap(), 0.0, false);
  // All troublesome (cutoff 0): virtual placement in desc-runtime order,
  // and they cannot overlap, so order = big, small2, small1.
  EXPECT_EQ(order[0], big);
  EXPECT_EQ(order[1], small2);
  EXPECT_EQ(order[2], small1);
}

TEST(Graphene, TriesBothDirectionsAndAllThresholds) {
  // best-of over configurations can only help: Graphene with the full
  // threshold set is never worse than with any single threshold.
  Rng rng(5);
  DagGeneratorOptions options;
  options.num_tasks = 40;
  Dag dag = generate_random_dag(options, rng);

  auto full = make_graphene_scheduler();
  const Time best = validated_makespan(*full, dag, cap());
  for (double threshold : {0.2, 0.4, 0.6, 0.8}) {
    GrapheneOptions single;
    single.thresholds = {threshold};
    single.try_backward = false;
    auto g = make_graphene_scheduler(single);
    EXPECT_LE(best, validated_makespan(*g, dag, cap()));
  }
}

TEST(Graphene, HandlesShuffleBarrierDags) {
  // Map-reduce style DAG: 4 maps, 3 reduces all depending on every map.
  DagBuilder builder;
  std::vector<TaskId> maps;
  for (int i = 0; i < 4; ++i) {
    maps.push_back(builder.add_task(4, ResourceVector{0.3, 0.2}));
  }
  for (int i = 0; i < 3; ++i) {
    const TaskId r = builder.add_task(6, ResourceVector{0.4, 0.5});
    for (TaskId m : maps) builder.add_edge(m, r);
  }
  Dag dag = std::move(builder).build();
  auto g = make_graphene_scheduler();
  const Time makespan = validated_makespan(*g, dag, cap());
  // Maps: 3 in the first wave (0.9 cpu), 1 more wave; reduces: 2 then 1.
  // Anything valid sits in [map waves + reduce waves, serial].
  EXPECT_GE(makespan, 4 + 6);
  EXPECT_LE(makespan, dag.total_runtime());
}

// Property: Graphene always returns valid schedules on random DAGs and is
// usually competitive with SJF (sanity of the whole pipeline).
class GrapheneValidityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GrapheneValidityTest, ValidOnRandomDags) {
  Rng rng(GetParam());
  DagGeneratorOptions options;
  options.num_tasks = 50;
  Dag dag = generate_random_dag(options, rng);
  auto g = make_graphene_scheduler();
  const Time makespan = validated_makespan(*g, dag, cap());
  DagFeatures features(dag);
  EXPECT_GE(makespan, features.critical_path());
  EXPECT_LE(makespan, dag.total_runtime());
}

INSTANTIATE_TEST_SUITE_P(Seeds, GrapheneValidityTest,
                         ::testing::Values(31, 32, 33, 34, 35));

}  // namespace
}  // namespace spear
