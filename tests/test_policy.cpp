#include "rl/policy.h"

#include <memory>

#include <gtest/gtest.h>

#include "dag/generator.h"
#include "support/builders.h"

namespace spear {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

Policy make_tiny_policy(Rng& rng, std::size_t max_ready = 3,
                        Time horizon = 4) {
  FeaturizerOptions options;
  options.max_ready = max_ready;
  options.horizon = horizon;
  return Policy::make(options, 2, rng, {8});
}

SchedulingEnv make_env(Dag dag, std::size_t max_ready = 3) {
  EnvOptions options;
  options.max_ready = max_ready;
  return SchedulingEnv(std::make_shared<Dag>(std::move(dag)), cap(), options);
}

TEST(Policy, MakeBuildsMatchingShapes) {
  Rng rng(1);
  Policy policy = Policy::make(FeaturizerOptions{}, 2, rng);
  EXPECT_EQ(policy.net().input_dim(), policy.featurizer().input_dim(2));
  EXPECT_EQ(policy.net().output_dim(), 16u);
  // Paper topology: 256/32/32 hidden.
  EXPECT_EQ(policy.net().sizes(),
            (std::vector<std::size_t>{163, 256, 32, 32, 16}));
}

TEST(Policy, RejectsMismatchedNetwork) {
  Rng rng(2);
  Mlp wrong({10, 4}, rng);
  EXPECT_THROW(Policy(Featurizer{}, std::move(wrong), 2),
               std::invalid_argument);
}

TEST(Policy, MaskedSoftmaxNormalizesOverValid) {
  const std::vector<double> logits = {1.0, 2.0, 3.0};
  const std::vector<bool> mask = {true, false, true};
  const auto probs = Policy::masked_softmax(logits, mask);
  EXPECT_DOUBLE_EQ(probs[1], 0.0);
  EXPECT_NEAR(probs[0] + probs[2], 1.0, 1e-12);
  EXPECT_GT(probs[2], probs[0]);
}

TEST(Policy, MaskedSoftmaxAllMaskedThrows) {
  EXPECT_THROW(Policy::masked_softmax({1.0, 2.0}, {false, false}),
               std::logic_error);
  EXPECT_THROW(Policy::masked_softmax({1.0}, {true, true}),
               std::invalid_argument);
}

TEST(Policy, MaskedSoftmaxStableForExtremeLogits) {
  const auto probs =
      Policy::masked_softmax({1e4, -1e4, 0.0}, {true, true, false});
  EXPECT_NEAR(probs[0], 1.0, 1e-12);
  EXPECT_NEAR(probs[1], 0.0, 1e-12);
}

TEST(Policy, ValidOutputMaskMatchesEnv) {
  Rng rng(3);
  Policy policy = make_tiny_policy(rng);
  auto env = make_env(testing::make_independent(5, 2, ResourceVector{0.4, 0.4}));
  // 3 visible ready tasks, idle cluster: outputs 0..2 valid, process not.
  auto mask = policy.valid_output_mask(env);
  EXPECT_EQ(mask, (std::vector<bool>{true, true, true, false}));
  env.step(0);
  env.step(0);  // 0.8 used; third task (0.4) no longer fits
  mask = policy.valid_output_mask(env);
  EXPECT_EQ(mask, (std::vector<bool>{false, false, false, true}));
}

TEST(Policy, ActionProbsOnlyOnValidActions) {
  Rng rng(4);
  Policy policy = make_tiny_policy(rng);
  auto env = make_env(testing::make_independent(2, 2, ResourceVector{0.7, 0.7}));
  const auto probs = policy.action_probs(env);
  ASSERT_EQ(probs.size(), 4u);
  EXPECT_GT(probs[0], 0.0);
  EXPECT_GT(probs[1], 0.0);
  EXPECT_DOUBLE_EQ(probs[2], 0.0);  // empty ready slot
  EXPECT_DOUBLE_EQ(probs[3], 0.0);  // idle cluster: no process
  double sum = 0.0;
  for (double p : probs) sum += p;
  EXPECT_NEAR(sum, 1.0, 1e-12);
}

TEST(Policy, SampleOnlyReturnsValidOutputs) {
  Rng rng(5);
  Policy policy = make_tiny_policy(rng);
  auto env = make_env(testing::make_independent(2, 2, ResourceVector{0.7, 0.7}));
  env.step(0);  // now only process is valid
  Rng sampler(6);
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(policy.sample_output(env, sampler), 3u);
  }
}

TEST(Policy, GreedyPicksArgmax) {
  Rng rng(7);
  Policy policy = make_tiny_policy(rng);
  auto env = make_env(testing::make_independent(3, 2, ResourceVector{0.2, 0.2}));
  const auto probs = policy.action_probs(env);
  const auto greedy = policy.greedy_output(env);
  for (std::size_t o = 0; o < probs.size(); ++o) {
    EXPECT_LE(probs[o], probs[greedy] + 1e-15);
  }
}

TEST(Policy, ToEnvActionMapping) {
  Rng rng(8);
  Policy policy = make_tiny_policy(rng);
  EXPECT_EQ(policy.to_env_action(0), 0);
  EXPECT_EQ(policy.to_env_action(2), 2);
  EXPECT_EQ(policy.to_env_action(3), SchedulingEnv::kProcessAction);
}

TEST(Policy, RolloutEpisodeTerminatesWithValidSchedule) {
  Rng rng(9);
  Policy policy = make_tiny_policy(rng);
  DagGeneratorOptions options;
  options.num_tasks = 15;
  Rng gen(10);
  Dag dag = generate_random_dag(options, gen);
  auto env = make_env(dag);
  Rng sampler(11);
  const Time makespan = policy.rollout_episode(env, sampler);
  DagFeatures features(dag);
  EXPECT_GE(makespan, features.critical_path());
  EXPECT_LE(makespan, dag.total_runtime());
}

TEST(Policy, RolloutJumpAndSlotSemanticsBothTerminate) {
  Rng rng(12);
  Policy policy = make_tiny_policy(rng);
  Dag dag = testing::make_chain({3, 2, 4});
  auto env = make_env(dag);
  Rng s1(13), s2(13);
  const Time with_jump = policy.rollout_episode(env, s1, true);
  const Time with_slots = policy.rollout_episode(env, s2, false);
  // A chain admits exactly one schedule shape: both equal the serial time.
  EXPECT_EQ(with_jump, 9);
  EXPECT_EQ(with_slots, 9);
}

}  // namespace
}  // namespace spear
