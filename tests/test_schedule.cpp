#include "cluster/schedule.h"

#include <gtest/gtest.h>

#include "support/builders.h"

namespace spear {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

TEST(Schedule, MakespanOfEmptyIsZero) {
  Schedule s;
  Dag dag = DagBuilder().build();
  EXPECT_EQ(s.makespan(dag), 0);
}

TEST(Schedule, StartAndFinish) {
  Dag dag = testing::make_chain({3, 4});
  Schedule s;
  s.add(0, 0);
  s.add(1, 3);
  EXPECT_EQ(s.start_of(0), 0);
  EXPECT_EQ(s.start_of(1), 3);
  EXPECT_EQ(s.finish_of(0, dag), 3);
  EXPECT_EQ(s.finish_of(1, dag), 7);
  EXPECT_EQ(s.makespan(dag), 7);
  EXPECT_THROW(s.start_of(5), std::out_of_range);
}

TEST(ScheduleValidate, AcceptsFeasibleSchedule) {
  Dag dag = testing::make_chain({3, 4});
  Schedule s;
  s.add(0, 0);
  s.add(1, 3);
  EXPECT_EQ(s.validate(dag, cap()), std::nullopt);
}

TEST(ScheduleValidate, AcceptsSlackBetweenTasks) {
  Dag dag = testing::make_chain({3, 4});
  Schedule s;
  s.add(0, 0);
  s.add(1, 10);  // gap after parent is fine
  EXPECT_EQ(s.validate(dag, cap()), std::nullopt);
}

TEST(ScheduleValidate, RejectsMissingTask) {
  Dag dag = testing::make_chain({3, 4});
  Schedule s;
  s.add(0, 0);
  const auto error = s.validate(dag, cap());
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("never placed"), std::string::npos);
}

TEST(ScheduleValidate, RejectsDuplicatePlacement) {
  Dag dag = testing::make_chain({3});
  Schedule s;
  s.add(0, 0);
  s.add(0, 5);
  const auto error = s.validate(dag, cap());
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("more than once"), std::string::npos);
}

TEST(ScheduleValidate, RejectsUnknownTask) {
  Dag dag = testing::make_chain({3});
  Schedule s;
  s.add(0, 0);
  s.add(7, 0);
  const auto error = s.validate(dag, cap());
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("unknown task"), std::string::npos);
}

TEST(ScheduleValidate, RejectsNegativeStart) {
  Dag dag = testing::make_chain({3});
  Schedule s;
  s.add(0, -1);
  const auto error = s.validate(dag, cap());
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("negative"), std::string::npos);
}

TEST(ScheduleValidate, RejectsDependencyViolation) {
  Dag dag = testing::make_chain({3, 4});
  Schedule s;
  s.add(0, 0);
  s.add(1, 2);  // parent finishes at 3
  const auto error = s.validate(dag, cap());
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("before parent"), std::string::npos);
}

TEST(ScheduleValidate, RejectsCapacityViolation) {
  Dag dag = testing::make_independent(3, 5, ResourceVector{0.5, 0.5});
  Schedule s;
  s.add(0, 0);
  s.add(1, 0);
  s.add(2, 0);  // 1.5 demand at t=0
  const auto error = s.validate(dag, cap());
  ASSERT_TRUE(error.has_value());
  EXPECT_NE(error->find("capacity"), std::string::npos);
}

TEST(ScheduleValidate, AcceptsExactCapacityPacking) {
  Dag dag = testing::make_independent(2, 5, ResourceVector{0.5, 0.5});
  Schedule s;
  s.add(0, 0);
  s.add(1, 0);
  EXPECT_EQ(s.validate(dag, cap()), std::nullopt);
}

TEST(ScheduleValidate, CapacityViolationOnPartialOverlap) {
  Dag dag = testing::make_independent(2, 5, ResourceVector{0.7, 0.7});
  Schedule s;
  s.add(0, 0);
  s.add(1, 4);  // overlaps [4, 5)
  const auto error = s.validate(dag, cap());
  ASSERT_TRUE(error.has_value());
  // Shifted past the overlap it validates.
  Schedule ok;
  ok.add(0, 0);
  ok.add(1, 5);
  EXPECT_EQ(ok.validate(dag, cap()), std::nullopt);
}

}  // namespace
}  // namespace spear
