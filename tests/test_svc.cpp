// The scheduling service core: admission control, backpressure, the
// degradation ladder, drain semantics, request isolation, and the
// fd-level line transport (svc/admission.h, svc/service.h, svc/frontend.h).

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <thread>

#include <gtest/gtest.h>

#include "dag/io.h"
#include "support/builders.h"
#include "svc/frontend.h"
#include "svc/json.h"
#include "svc/service.h"

namespace spear::svc {
namespace {

ResourceVector cap() { return ResourceVector{1.0, 1.0}; }

Job make_job(const std::string& id) {
  Job job;
  job.id = id;
  job.arrival = std::chrono::steady_clock::now();
  job.deadline = job.arrival + std::chrono::seconds(10);
  return job;
}

// --- validate_job -------------------------------------------------------

TEST(SvcAdmission, ValidatesStructureAndSchedulability) {
  AdmissionLimits limits;
  limits.max_tasks_per_job = 4;

  DagBuilder empty(2);
  auto verdict = validate_job(std::move(empty).build(), cap(), limits);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->code, ErrorCode::kInvalidDag);

  // Task-count cap.
  verdict = validate_job(testing::make_independent(5, 1), cap(), limits);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->code, ErrorCode::kTooLarge);

  // Dimension mismatch against the cluster.
  verdict = validate_job(testing::make_independent(2, 1),
                         ResourceVector{1.0, 1.0, 1.0}, limits);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->code, ErrorCode::kInvalidDag);

  // A demand no capacity can ever hold: unschedulable, rejected up front.
  DagBuilder big(2);
  big.add_task(5, ResourceVector{2.0, 0.5}, "whale");
  verdict = validate_job(std::move(big).build(), cap(), limits);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->code, ErrorCode::kUnschedulable);

  EXPECT_EQ(validate_job(testing::make_independent(3, 1), cap(), limits),
            std::nullopt);
}

// --- AdmissionQueue -----------------------------------------------------

TEST(SvcAdmission, ShedsWhenFullWithRetryAfterHint) {
  FairQueueOptions fair;
  fair.capacity = 2;
  fair.service_ms_seed = 25.0;
  AdmissionQueue queue(fair);
  EXPECT_EQ(queue.try_push(make_job("a")), std::nullopt);
  EXPECT_EQ(queue.try_push(make_job("b")), std::nullopt);

  const auto verdict = queue.try_push(make_job("c"));
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->code, ErrorCode::kQueueFull);
  EXPECT_EQ(verdict->retry_after_ms, 25);
  EXPECT_EQ(queue.shed_count(), 1);
  EXPECT_EQ(queue.size(), 2u);  // bounded: the shed job was never stored
}

// Regression (cold-start backoff): the VERY FIRST shed response — before any
// job has completed and fed the service-time EWMA — must still carry a
// nonzero retry_after_ms.  A zero hint is an invitation to an immediate
// retry stampede from every shed client at once.
TEST(SvcAdmission, FirstShedCarriesNonzeroRetryHint) {
  FairQueueOptions fair;
  fair.capacity = 1;
  fair.service_ms_seed = 0.0;  // even a degenerate seed is clamped up
  AdmissionQueue queue(fair);
  ASSERT_EQ(queue.try_push(make_job("a")), std::nullopt);

  const auto verdict = queue.try_push(make_job("b"));
  ASSERT_TRUE(verdict.has_value());
  EXPECT_GE(verdict->retry_after_ms, 1);
  EXPECT_GE(queue.service_ms_estimate(), 1.0);
}

TEST(SvcAdmission, CloseDrainsThenStops) {
  AdmissionQueue queue(4);
  ASSERT_EQ(queue.try_push(make_job("a")), std::nullopt);
  ASSERT_EQ(queue.try_push(make_job("b")), std::nullopt);
  queue.close();

  // Closed to producers...
  const auto verdict = queue.try_push(make_job("c"));
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(verdict->code, ErrorCode::kShuttingDown);

  // ...but consumers still drain what was admitted, in order.
  Job out;
  ASSERT_TRUE(queue.pop(out));
  EXPECT_EQ(out.id, "a");
  queue.on_done(out);
  ASSERT_TRUE(queue.pop(out));
  EXPECT_EQ(out.id, "b");
  queue.on_done(out);
  EXPECT_FALSE(queue.pop(out));  // drained and closed -> workers exit
}

TEST(SvcAdmission, PopBlocksUntilWorkArrives) {
  AdmissionQueue queue(4);
  std::promise<std::string> got;
  std::thread consumer([&] {
    Job out;
    ASSERT_TRUE(queue.pop(out));
    got.set_value(out.id);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  ASSERT_EQ(queue.try_push(make_job("late")), std::nullopt);
  EXPECT_EQ(got.get_future().get(), "late");
  consumer.join();
}

// --- SchedulerService ---------------------------------------------------

struct Outcome {
  bool ok = false;
  SubmitResult result;
  Rejection rejection;
};

/// Submits and waits for the (possibly asynchronous) outcome.
Outcome roundtrip(SchedulerService& service, const SubmitRequest& request) {
  auto promise = std::make_shared<std::promise<Outcome>>();
  service.submit(request, [promise](bool ok, const SubmitResult& result,
                                    const Rejection& rejection) {
    promise->set_value(Outcome{ok, result, rejection});
  });
  return promise->get_future().get();
}

SubmitRequest chain_request(const std::string& id) {
  SubmitRequest request;
  request.id = id;
  request.dag_text = dag_to_text(testing::make_chain({3, 3, 3, 3}));
  return request;
}

TEST(SvcService, PlacesAValidDagWithinItsBudget) {
  ServiceOptions options;
  options.workers = 1;
  options.search_iterations = 60;
  options.min_iterations = 30;
  SchedulerService service(options);
  service.start();

  const Outcome outcome = roundtrip(service, chain_request("r1"));
  ASSERT_TRUE(outcome.ok) << outcome.rejection.message;
  EXPECT_EQ(outcome.result.mode, ServeMode::kSearch);
  EXPECT_FALSE(outcome.result.degraded);
  EXPECT_EQ(outcome.result.makespan, 12);  // 4-task chain of runtime 3
  EXPECT_EQ(outcome.result.placements.size(), 4u);

  const ServiceCounters counters = service.counters();
  EXPECT_EQ(counters.submitted, 1);
  EXPECT_EQ(counters.admitted, 1);
  EXPECT_EQ(counters.placed, 1);
}

TEST(SvcService, IsolatesStructurallyBadRequests) {
  ServiceOptions options;
  options.workers = 1;
  options.limits.max_tasks_per_job = 4;
  options.limits.max_line_bytes = 4096;
  SchedulerService service(options);
  service.start();

  SubmitRequest bad;
  bad.id = "bad";
  bad.dag_text = "this is not a dag";
  Outcome outcome = roundtrip(service, bad);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.rejection.code, ErrorCode::kInvalidDag);

  SubmitRequest nan_demand;
  nan_demand.id = "nan";
  nan_demand.dag_text = "dims 2\ntask a 5 nan 0.5\n";
  outcome = roundtrip(service, nan_demand);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.rejection.code, ErrorCode::kInvalidDag);

  SubmitRequest oversized;
  oversized.id = "big";
  oversized.dag_text = dag_to_text(testing::make_independent(5, 1));
  outcome = roundtrip(service, oversized);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.rejection.code, ErrorCode::kTooLarge);

  SubmitRequest whale;
  whale.id = "whale";
  whale.dag_text = "dims 2\ntask w 5 2.0 0.5\n";
  outcome = roundtrip(service, whale);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.rejection.code, ErrorCode::kUnschedulable);

  SubmitRequest huge_payload;
  huge_payload.id = "payload";
  huge_payload.dag_text = std::string(8192, 'x');
  outcome = roundtrip(service, huge_payload);
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.rejection.code, ErrorCode::kTooLarge);

  // The daemon survived all of it and still serves good requests.
  const Outcome good = roundtrip(service, chain_request("after"));
  EXPECT_TRUE(good.ok);
}

TEST(SvcService, ShedsWhenTheQueueIsFull) {
  ServiceOptions options;
  options.limits.queue_capacity = 1;
  SchedulerService service(options);
  // Never started: nothing drains the queue, so the second submit sheds.
  const auto first = std::make_shared<std::atomic<bool>>(false);
  service.submit(chain_request("q1"),
                 [first](bool, const SubmitResult&, const Rejection&) {
                   first->store(true);
                 });
  EXPECT_FALSE(first->load());  // admitted, parked in the queue

  const Outcome shed = roundtrip(service, chain_request("q2"));
  EXPECT_FALSE(shed.ok);
  EXPECT_EQ(shed.rejection.code, ErrorCode::kQueueFull);
  EXPECT_GE(shed.rejection.retry_after_ms, 1);
  EXPECT_EQ(service.counters().rejected_queue_full, 1);
  EXPECT_EQ(service.queue_depth(), 1u);  // bounded
}

TEST(SvcService, ExpiredBudgetsAreRejectedNotServed) {
  ServiceOptions options;
  options.workers = 1;
  SchedulerService service(options);

  // Admit with a 1 ms budget while no worker is running, let it expire,
  // then start the workers: the job must get deadline_expired, not a stale
  // placement.
  SubmitRequest request = chain_request("late");
  request.budget_ms = 1;
  auto promise = std::make_shared<std::promise<Outcome>>();
  service.submit(request, [promise](bool ok, const SubmitResult& result,
                                    const Rejection& rejection) {
    promise->set_value(Outcome{ok, result, rejection});
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  service.start();

  const Outcome outcome = promise->get_future().get();
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.rejection.code, ErrorCode::kDeadlineExpired);
  EXPECT_EQ(service.counters().rejected_deadline_expired, 1);
}

TEST(SvcService, DegradationLadderReportsItsRung) {
  // Force rung 2: any remaining budget is below the heuristic floor.
  ServiceOptions heuristic_options;
  heuristic_options.workers = 1;
  heuristic_options.default_budget_ms = 1000;
  heuristic_options.heuristic_floor_ms = 1 << 20;
  {
    SchedulerService service(heuristic_options);
    service.start();
    const Outcome outcome = roundtrip(service, chain_request("h"));
    ASSERT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.result.mode, ServeMode::kHeuristic);
    EXPECT_TRUE(outcome.result.degraded);
    EXPECT_EQ(outcome.result.makespan, 12);  // heuristic still optimal here
    EXPECT_EQ(service.counters().degraded_heuristic, 1);
  }

  // Force rung 1: below the full-search floor but above the heuristic one.
  ServiceOptions reduced_options;
  reduced_options.workers = 1;
  reduced_options.default_budget_ms = 1000;
  reduced_options.full_search_floor_ms = 1 << 20;
  reduced_options.heuristic_floor_ms = 0;
  {
    SchedulerService service(reduced_options);
    service.start();
    const Outcome outcome = roundtrip(service, chain_request("r"));
    ASSERT_TRUE(outcome.ok);
    EXPECT_EQ(outcome.result.mode, ServeMode::kReduced);
    EXPECT_TRUE(outcome.result.degraded);
    EXPECT_EQ(service.counters().degraded_reduced, 1);
  }
}

TEST(SvcService, DrainAnswersEverythingThenRejectsNewWork) {
  ServiceOptions options;
  options.workers = 2;
  options.search_iterations = 40;
  options.min_iterations = 20;
  SchedulerService service(options);
  service.start();

  const int jobs = 6;
  auto answered = std::make_shared<std::atomic<int>>(0);
  for (int i = 0; i < jobs; ++i) {
    service.submit(chain_request("d" + std::to_string(i)),
                   [answered](bool ok, const SubmitResult&,
                              const Rejection&) {
                     EXPECT_TRUE(ok);
                     ++*answered;
                   });
  }
  service.shutdown();  // must block until every admitted job is answered
  EXPECT_EQ(answered->load(), jobs);
  EXPECT_EQ(service.counters().placed, jobs);

  // After the drain the service refuses new work with shutting_down.
  const Outcome outcome = roundtrip(service, chain_request("postmortem"));
  EXPECT_FALSE(outcome.ok);
  EXPECT_EQ(outcome.rejection.code, ErrorCode::kShuttingDown);
}

TEST(SvcService, CountersReconcileAcrossWorkerCounts) {
  // The same request mix must produce identical outcome counters at 1, 2,
  // and 4 workers — concurrency changes who serves, never what is counted.
  ServiceCounters baseline;
  for (const int workers : {1, 2, 4}) {
    ServiceOptions options;
    options.workers = workers;
    options.search_iterations = 40;
    options.min_iterations = 20;
    SchedulerService service(options);
    service.start();

    auto done = std::make_shared<std::atomic<int>>(0);
    const auto count_only = [done](bool, const SubmitResult&,
                                   const Rejection&) { ++*done; };
    for (int i = 0; i < 4; ++i) {
      service.submit(chain_request("ok" + std::to_string(i)), count_only);
    }
    SubmitRequest bad;
    bad.id = "bad";
    bad.dag_text = "garbage";
    service.submit(bad, count_only);
    SubmitRequest whale;
    whale.id = "whale";
    whale.dag_text = "dims 2\ntask w 5 2.0 0.5\n";
    service.submit(whale, count_only);
    service.shutdown();

    const ServiceCounters counters = service.counters();
    EXPECT_EQ(done->load(), 6);
    EXPECT_EQ(counters.submitted, 6);
    EXPECT_EQ(counters.placed, 4);
    EXPECT_EQ(counters.rejected_invalid_dag, 1);
    EXPECT_EQ(counters.rejected_unschedulable, 1);
    if (workers == 1) {
      baseline = counters;
    } else {
      EXPECT_EQ(counters.placed, baseline.placed);
      EXPECT_EQ(counters.rejected_total(), baseline.rejected_total());
      EXPECT_EQ(counters.degraded_total(), baseline.degraded_total());
    }
  }
}

TEST(SvcService, StatsJsonIsWellFormedAndReconciles) {
  ServiceOptions options;
  options.workers = 1;
  SchedulerService service(options);
  service.start();
  roundtrip(service, chain_request("s1"));
  SubmitRequest bad;
  bad.id = "bad";
  bad.dag_text = "nope";
  roundtrip(service, bad);

  const JsonValue stats = json_parse(service.counters_json());
  EXPECT_DOUBLE_EQ(stats.at("submitted").as_number(), 2.0);
  EXPECT_DOUBLE_EQ(stats.at("placed").as_number(), 1.0);
  EXPECT_DOUBLE_EQ(stats.at("rejected").at("invalid_dag").as_number(), 1.0);
  // Conservation: everything submitted is placed, rejected, cancelled, or
  // still in flight (queued or being served).
  EXPECT_DOUBLE_EQ(stats.at("submitted").as_number(),
                   stats.at("placed").as_number() +
                       stats.at("rejected").at("total").as_number() +
                       stats.at("cancelled").as_number() +
                       stats.at("in_flight").as_number());
  // The per-tenant breakdown mirrors the submit (default tenant only here).
  EXPECT_DOUBLE_EQ(
      stats.at("tenants").at("default").at("placed").as_number(), 1.0);
}

// --- fd-level line transport -------------------------------------------

TEST(SvcFrontend, LineReaderSplitsRecoversAndBounds) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  LineReader reader(fds[0], /*max_line_bytes=*/16);

  const std::string input =
      "first\nsecond\n" + std::string(64, 'x') + "\nthird\n";
  ASSERT_EQ(write(fds[1], input.data(), input.size()),
            static_cast<ssize_t>(input.size()));
  close(fds[1]);

  std::string line;
  ASSERT_EQ(reader.next(line, nullptr), LineReader::Status::kLine);
  EXPECT_EQ(line, "first");
  ASSERT_EQ(reader.next(line, nullptr), LineReader::Status::kLine);
  EXPECT_EQ(line, "second");
  // The 64-byte line exceeds the 16-byte cap: reported, then resynced.
  ASSERT_EQ(reader.next(line, nullptr), LineReader::Status::kOverlong);
  ASSERT_EQ(reader.next(line, nullptr), LineReader::Status::kLine);
  EXPECT_EQ(line, "third");
  EXPECT_EQ(reader.next(line, nullptr), LineReader::Status::kEof);
  close(fds[0]);
}

// Boundary pins for the reader's cap/EOF edges: a line of EXACTLY
// max_line_bytes is legal whether it ends in '\n' or in EOF, one byte more
// is overlong in either case, and the discard state of an unterminated
// overlong line must not leak a ghost line (or a stale kOverlong) at EOF.
TEST(SvcFrontend, LineReaderExactCapBoundaries) {
  const std::size_t cap_bytes = 8;

  {  // exactly at cap, terminated -> accepted
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    LineReader reader(fds[0], cap_bytes);
    const std::string input = std::string(cap_bytes, 'a') + "\n";
    ASSERT_EQ(write(fds[1], input.data(), input.size()),
              static_cast<ssize_t>(input.size()));
    close(fds[1]);
    std::string line;
    ASSERT_EQ(reader.next(line, nullptr), LineReader::Status::kLine);
    EXPECT_EQ(line, std::string(cap_bytes, 'a'));
    EXPECT_EQ(reader.next(line, nullptr), LineReader::Status::kEof);
    close(fds[0]);
  }

  {  // exactly at cap, unterminated at EOF -> still a line
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    LineReader reader(fds[0], cap_bytes);
    const std::string input(cap_bytes, 'b');
    ASSERT_EQ(write(fds[1], input.data(), input.size()),
              static_cast<ssize_t>(input.size()));
    close(fds[1]);
    std::string line;
    ASSERT_EQ(reader.next(line, nullptr), LineReader::Status::kLine);
    EXPECT_EQ(line, input);
    EXPECT_EQ(reader.next(line, nullptr), LineReader::Status::kEof);
    close(fds[0]);
  }

  {  // one byte over, terminated -> overlong, then clean EOF
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    LineReader reader(fds[0], cap_bytes);
    const std::string input = std::string(cap_bytes + 1, 'c') + "\n";
    ASSERT_EQ(write(fds[1], input.data(), input.size()),
              static_cast<ssize_t>(input.size()));
    close(fds[1]);
    std::string line;
    ASSERT_EQ(reader.next(line, nullptr), LineReader::Status::kOverlong);
    EXPECT_EQ(reader.next(line, nullptr), LineReader::Status::kEof);
    close(fds[0]);
  }

  {  // one byte over, unterminated at EOF -> overlong once, no ghost line
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    LineReader reader(fds[0], cap_bytes);
    const std::string input(cap_bytes + 1, 'd');
    ASSERT_EQ(write(fds[1], input.data(), input.size()),
              static_cast<ssize_t>(input.size()));
    close(fds[1]);
    std::string line;
    ASSERT_EQ(reader.next(line, nullptr), LineReader::Status::kOverlong);
    EXPECT_EQ(reader.next(line, nullptr), LineReader::Status::kEof);
    close(fds[0]);
  }
}

// The discard state set by an overlong unterminated line must swallow the
// REST of that line (even across many reads) and resync at its newline —
// and EOF mid-discard must not resurrect the swallowed tail as a line.
TEST(SvcFrontend, LineReaderDiscardStateDoesNotLeakAcrossEof) {
  {  // resync: overlong tail keeps streaming, then a newline, then a line
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    LineReader reader(fds[0], /*max_line_bytes=*/4);
    std::string line;
    ASSERT_EQ(write(fds[1], "xxxxxxxx", 8), 8);  // over cap, no newline yet
    ASSERT_EQ(reader.next(line, nullptr), LineReader::Status::kOverlong);
    ASSERT_EQ(write(fds[1], "yyyy", 4), 4);  // still the same overlong line
    ASSERT_EQ(reader.next(line, [] { return true; }),
              LineReader::Status::kStopped);  // swallowed, nothing to return
    ASSERT_EQ(write(fds[1], "y\nok\n", 5), 5);  // terminator + a real line
    ASSERT_EQ(reader.next(line, nullptr), LineReader::Status::kLine);
    EXPECT_EQ(line, "ok");
    close(fds[1]);
    EXPECT_EQ(reader.next(line, nullptr), LineReader::Status::kEof);
    close(fds[0]);
  }

  {  // EOF while discarding: the tail vanishes, EOF is clean
    int fds[2];
    ASSERT_EQ(pipe(fds), 0);
    LineReader reader(fds[0], /*max_line_bytes=*/4);
    std::string line;
    ASSERT_EQ(write(fds[1], "zzzzzzzz", 8), 8);
    ASSERT_EQ(reader.next(line, nullptr), LineReader::Status::kOverlong);
    ASSERT_EQ(write(fds[1], "tail", 4), 4);  // unterminated tail, then EOF
    close(fds[1]);
    EXPECT_EQ(reader.next(line, nullptr), LineReader::Status::kEof);
    close(fds[0]);
  }
}

TEST(SvcFrontend, LineReaderHonorsTheStopFlag) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  LineReader reader(fds[0], 1024);
  std::string line;
  // No data ever arrives; the stop predicate must break the wait.
  EXPECT_EQ(reader.next(line, [] { return true; }),
            LineReader::Status::kStopped);
  close(fds[0]);
  close(fds[1]);
}

TEST(SvcFrontend, ConnectionServesProtocolOverAPipe) {
  int in_fds[2], out_fds[2];
  ASSERT_EQ(pipe(in_fds), 0);
  ASSERT_EQ(pipe(out_fds), 0);

  ServiceOptions options;
  options.workers = 1;
  SchedulerService service(options);
  service.start();

  const std::string requests =
      "{\"id\":\"p1\",\"method\":\"ping\"}\n"
      "{\"id\":\"r1\",\"method\":\"submit\",\"dag\":\"dims 2\\ntask a 5 0.5 "
      "0.5\\n\"}\n"
      "not json\n"
      "{\"id\":\"s1\",\"method\":\"stats\"}\n";
  ASSERT_EQ(write(in_fds[1], requests.data(), requests.size()),
            static_cast<ssize_t>(requests.size()));
  close(in_fds[1]);  // EOF ends the connection loop

  auto writer = std::make_shared<LineWriter>(out_fds[1], /*own_fd=*/true);
  const std::int64_t handled =
      run_jsonl_connection(in_fds[0], writer, service, nullptr);
  EXPECT_EQ(handled, 4);
  service.shutdown();
  writer.reset();  // close the write end so the reader below sees EOF
  close(in_fds[0]);

  LineReader responses(out_fds[0], 1 << 16);
  std::string line;
  int lines = 0;
  bool saw_pong = false, saw_placed = false, saw_bad = false, saw_stats = false;
  while (responses.next(line, nullptr) == LineReader::Status::kLine) {
    ++lines;
    const JsonValue v = json_parse(line);
    const std::string id = v.at("id").as_string();
    if (id == "p1") saw_pong = v.at("result").as_string() == "pong";
    if (id == "r1") saw_placed = v.at("ok").as_bool();
    if (id.empty()) {
      saw_bad = v.at("error").at("code").as_string() == "bad_request";
    }
    if (id == "s1") saw_stats = v.at("stats").is_object();
  }
  EXPECT_EQ(lines, 4);
  EXPECT_TRUE(saw_pong);
  EXPECT_TRUE(saw_placed);
  EXPECT_TRUE(saw_bad);
  EXPECT_TRUE(saw_stats);
  close(out_fds[0]);
}

}  // namespace
}  // namespace spear::svc
