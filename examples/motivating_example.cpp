// The motivating example (§II-C, Fig. 3 of the paper), reconstructed.
//
// The paper's figure shows an 8-task DAG with two-dimensional demands where
// search-based scheduling finishes in 2T while Tetris, CP and Graphene all
// need 3T.  The exact task values in Fig. 3 are not machine-readable, so
// this is an 8-task instance with the same structure and the same
// phenomenon, found by exhaustive search over instances: the optimal
// makespan is 29 while Tetris, SJF, CP, and Graphene all produce 39 — a 26%
// reduction, matching the paper's "schedule search beats every greedy
// heuristic" story.
//
// Spear's MCTS finds the optimum here; the greedy baselines cannot, because
// avoiding the trap requires deliberately leaving resources idle early.

#include <cstdio>
#include <memory>

#include "common/flags.h"
#include "common/table.h"
#include "cluster/gantt.h"
#include "core/spear.h"
#include "dag/dot.h"
#include "dag/gallery.h"
#include "sched/critical_path.h"
#include "sched/graphene.h"
#include "sched/sjf.h"
#include "sched/tetris.h"

int main(int argc, char** argv) {
  using namespace spear;

  Flags flags;
  const auto budget = flags.define_int("budget", 400, "MCTS initial budget");
  const auto dot_path =
      flags.define_string("dot", "", "write the DAG in DOT format to this file");
  flags.parse(argc, argv);

  const ResourceVector capacity{1.0, 1.0};
  const Dag dag = motivating_example_dag();
  if (!dot_path->empty()) {
    write_dot(dag, *dot_path);
    std::printf("wrote %s\n", dot_path->c_str());
  }

  std::printf("Motivating example: %zu tasks, %zu edges, critical path %lld, "
              "optimal makespan 29\n\n",
              dag.num_tasks(), dag.num_edges(),
              static_cast<long long>(DagFeatures(dag).critical_path()));

  Table table({"scheduler", "makespan", "vs optimal"});
  auto report = [&](Scheduler& s) {
    const auto makespan = validated_makespan(s, dag, capacity);
    char rel[32];
    std::snprintf(rel, sizeof(rel), "%+.1f%%",
                  100.0 * (static_cast<double>(makespan) - 29.0) / 29.0);
    table.add(s.name(), static_cast<long long>(makespan), rel);
  };

  auto mcts = make_mcts_scheduler(*budget, std::max<std::int64_t>(*budget / 4, 1));
  report(*mcts);
  for (const auto& baseline :
       {make_tetris_scheduler(), make_sjf_scheduler(),
        make_critical_path_scheduler(), make_graphene_scheduler()}) {
    report(*baseline);
  }
  table.print();

  std::printf(
      "\nThe greedy baselines pack work-conservingly and are all trapped;\n"
      "search (MCTS/Spear) discovers the schedule that leaves capacity\n"
      "idle early so the two long co-runnable groups line up.\n");

  // Show the two schedules side by side.
  GanttOptions gantt;
  gantt.width = 39;
  const Schedule found = mcts->schedule(dag, capacity);
  std::printf("\nMCTS schedule:\n%s%s", gantt_chart(found, dag, gantt).c_str(),
              utilization_chart(found, dag, capacity, gantt).c_str());
  auto tetris = make_tetris_scheduler();
  const Schedule trapped = tetris->schedule(dag, capacity);
  std::printf("\nTetris schedule:\n%s%s",
              gantt_chart(trapped, dag, gantt).c_str(),
              utilization_chart(trapped, dag, capacity, gantt).c_str());
  return 0;
}
