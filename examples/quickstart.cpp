// Quickstart: the smallest end-to-end use of the Spear library.
//
//   1. Generate a random dependency DAG with heterogeneous resource demands.
//   2. Train a small Spear policy (imitation + REINFORCE).
//   3. Schedule the DAG with Spear and with the greedy baselines.
//   4. Print the makespans.
//
// Build & run:  ./build/examples/quickstart [--seed N] [--tasks N]

#include <cstdio>
#include <memory>

#include "common/flags.h"
#include "common/table.h"
#include "core/spear.h"
#include "dag/generator.h"
#include "sched/critical_path.h"
#include "sched/graphene.h"
#include "sched/sjf.h"
#include "sched/tetris.h"

int main(int argc, char** argv) {
  using namespace spear;

  Flags flags;
  const auto seed = flags.define_int("seed", 42, "random seed");
  const auto tasks = flags.define_int("tasks", 30, "tasks in the demo DAG");
  flags.parse(argc, argv);

  const ResourceVector capacity{1.0, 1.0};

  // 1. A random job DAG, as in the paper's simulations (width 2..5).
  Rng rng(static_cast<std::uint64_t>(*seed));
  DagGeneratorOptions dag_options;
  dag_options.num_tasks = static_cast<std::size_t>(*tasks);
  const Dag dag = generate_random_dag(dag_options, rng);
  std::printf("Generated DAG: %zu tasks, %zu edges, critical path %lld\n\n",
              dag.num_tasks(), dag.num_edges(),
              static_cast<long long>(DagFeatures(dag).critical_path()));

  // 2. Train a policy (scaled-down defaults; see train_policy for knobs).
  std::printf("Training the Spear policy (takes a minute)...\n");
  SpearTrainingOptions training;
  training.num_examples = 8;
  training.tasks_per_example = 15;
  training.imitation_epochs = 8;
  training.reinforce_epochs = 10;
  training.rollouts_per_example = 4;
  training.seed = static_cast<std::uint64_t>(*seed);
  auto policy =
      std::make_shared<const Policy>(train_default_spear_policy(training));

  // 3. Schedule with Spear and the baselines.
  SpearOptions spear_options;
  spear_options.initial_budget = 200;
  spear_options.min_budget = 50;
  auto spear = make_spear_scheduler(policy, spear_options);

  Table table({"scheduler", "makespan"});
  table.add(spear->name(),
            static_cast<long long>(validated_makespan(*spear, dag, capacity)));
  for (auto& baseline :
       {make_tetris_scheduler(), make_sjf_scheduler(),
        make_critical_path_scheduler(), make_graphene_scheduler()}) {
    table.add(baseline->name(),
              static_cast<long long>(
                  validated_makespan(*baseline, dag, capacity)));
  }

  std::printf("\n");
  table.print();
  return 0;
}
