// A realistic Spark-style analytics job, built by hand with the public DAG
// API: two input scans fan into per-partition map stages, a shuffle feeds a
// join, and an aggregation tree reduces to a single writer.  Demonstrates:
//   * authoring DAGs programmatically (the workload class that motivates
//     the paper's introduction);
//   * multi-job batch scheduling via merge_dags;
//   * Gantt/utilization rendering of the winning schedule.
//
//   ./build/examples/spark_stages [--jobs 2] [--budget 300]

#include <cstdio>
#include <memory>
#include <vector>

#include "cluster/gantt.h"
#include "common/flags.h"
#include "common/table.h"
#include "core/spear.h"
#include "dag/merge.h"
#include "sched/critical_path.h"
#include "sched/graphene.h"
#include "sched/insertion.h"
#include "sched/sjf.h"
#include "sched/tetris.h"

namespace {

using namespace spear;

/// One Spark-like job: scan -> map x partitions -> shuffle/join -> agg tree
/// -> write.  Maps are CPU-light/IO-ish; the join is memory-hungry; the
/// aggregation tree halves each level.
Dag make_spark_job(std::size_t partitions, Rng& rng) {
  DagBuilder b;
  const TaskId scan_left =
      b.add_task(4, ResourceVector{0.10, 0.05}, "scanL");
  const TaskId scan_right =
      b.add_task(6, ResourceVector{0.10, 0.05}, "scanR");

  std::vector<TaskId> maps;
  for (std::size_t p = 0; p < partitions; ++p) {
    const Time runtime = 4 + static_cast<Time>(rng.uniform_int(0, 6));
    const TaskId map = b.add_task(runtime, ResourceVector{0.20, 0.10},
                                  "map" + std::to_string(p));
    b.add_edge(p % 2 == 0 ? scan_left : scan_right, map);
    maps.push_back(map);
  }

  const TaskId join = b.add_task(10, ResourceVector{0.30, 0.60}, "join");
  for (TaskId m : maps) b.add_edge(m, join);

  // Aggregation tree over the partitions' join output.
  std::vector<TaskId> level;
  for (std::size_t p = 0; p + 1 < partitions; p += 2) {
    const TaskId agg = b.add_task(3, ResourceVector{0.25, 0.25},
                                  "agg0." + std::to_string(p / 2));
    b.add_edge(join, agg);
    level.push_back(agg);
  }
  int depth = 1;
  while (level.size() > 1) {
    std::vector<TaskId> next;
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      const TaskId agg =
          b.add_task(3, ResourceVector{0.25, 0.25},
                     "agg" + std::to_string(depth) + "." + std::to_string(i / 2));
      b.add_edge(level[i], agg);
      b.add_edge(level[i + 1], agg);
      next.push_back(agg);
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
    ++depth;
  }

  const TaskId write = b.add_task(2, ResourceVector{0.10, 0.15}, "write");
  b.add_edge(level.empty() ? join : level.front(), write);
  return std::move(b).build();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spear;

  Flags flags;
  const auto jobs = flags.define_int("jobs", 2, "concurrent Spark jobs");
  const auto partitions = flags.define_int("partitions", 6, "partitions/job");
  const auto budget = flags.define_int("budget", 300, "MCTS budget");
  const auto seed = flags.define_int("seed", 5, "seed");
  flags.parse(argc, argv);

  const ResourceVector capacity{1.0, 1.0};
  Rng rng(static_cast<std::uint64_t>(*seed));
  std::vector<Dag> batch;
  for (int j = 0; j < *jobs; ++j) {
    batch.push_back(
        make_spark_job(static_cast<std::size_t>(*partitions), rng));
  }
  const Dag dag = merge_dags(batch);
  std::printf("batch of %lld Spark-style jobs: %zu tasks, %zu edges, "
              "critical path %lld\n\n",
              static_cast<long long>(*jobs), dag.num_tasks(), dag.num_edges(),
              static_cast<long long>(DagFeatures(dag).critical_path()));

  auto mcts =
      make_mcts_scheduler(*budget, std::max<std::int64_t>(*budget / 4, 1));
  Table table({"scheduler", "batch makespan"});
  Schedule best_schedule;
  Time best_makespan = 0;
  auto report = [&](Scheduler& s) {
    const Time m = validated_makespan(s, dag, capacity);
    table.add(s.name(), static_cast<long long>(m));
    if (best_makespan == 0 || m < best_makespan) {
      best_makespan = m;
      best_schedule = s.schedule(dag, capacity);
    }
  };
  report(*mcts);
  for (const auto& baseline :
       {make_tetris_scheduler(), make_tetris_srpt_scheduler(0.5),
        make_sjf_scheduler(), make_critical_path_scheduler(),
        make_insertion_scheduler(), make_graphene_scheduler()}) {
    report(*baseline);
  }
  table.print();

  GanttOptions gantt;
  gantt.width = 72;
  std::printf("\nBest schedule (makespan %lld):\n%s",
              static_cast<long long>(best_makespan),
              utilization_chart(best_schedule, dag, capacity, gantt).c_str());
  return 0;
}
