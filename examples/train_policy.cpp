// Full §IV training pipeline with every knob exposed:
//
//   1. generate a training set of random DAGs;
//   2. supervised pre-training by imitating the critical-path heuristic;
//   3. REINFORCE with an averaged-rollout baseline;
//   4. save the model and the learning curve.
//
//   ./build/examples/train_policy --examples 24 --tasks 25 --imitation-epochs 10
//       --rl-epochs 50 --rollouts 8 --model policy.txt --curve curve.csv
//
// Paper-scale values (--examples 144 --tasks 25 --rl-epochs 7000
// --rollouts 20) reproduce Fig. 8(b) but need many hours on one core.
// For runs that long, --checkpoint-dir + --resume make the pipeline
// crash-safe (DESIGN.md §9): Ctrl-C finishes the current epoch, flushes a
// checkpoint and exits cleanly; restarting with --resume continues the
// exact weight/optimizer/Rng trajectory.

#include <cstdio>
#include <memory>
#include <optional>

#include "ckpt/manager.h"
#include "ckpt/supervisor.h"
#include "common/csv.h"
#include "common/flags.h"
#include "core/spear.h"
#include "dag/generator.h"
#include "nn/serialize.h"
#include "rl/imitation.h"
#include "rl/reinforce.h"

int main(int argc, char** argv) {
  using namespace spear;

  Flags flags;
  const auto examples = flags.define_int("examples", 24, "training DAGs");
  const auto tasks = flags.define_int("tasks", 25, "tasks per training DAG");
  const auto imitation_epochs =
      flags.define_int("imitation-epochs", 10, "supervised epochs");
  const auto rl_epochs = flags.define_int("rl-epochs", 40, "REINFORCE epochs");
  const auto rollouts =
      flags.define_int("rollouts", 8, "rollouts per example (paper: 20)");
  const auto seed = flags.define_int("seed", 7, "random seed");
  const auto model_path =
      flags.define_string("model", "spear_policy.txt", "model output path");
  const auto curve_path =
      flags.define_string("curve", "", "learning-curve CSV output path");
  const auto checkpoint_dir = flags.define_string(
      "checkpoint-dir", "", "rotate crash-safe checkpoints in this directory");
  const auto checkpoint_every = flags.define_int(
      "checkpoint-every", 1, "epochs between checkpoints (with a dir)");
  const auto resume = flags.define_bool(
      "resume", false, "resume from the latest checkpoint in --checkpoint-dir");
  flags.parse(argc, argv);

  const ResourceVector capacity{1.0, 1.0};
  Rng rng(static_cast<std::uint64_t>(*seed));

  DagGeneratorOptions dag_options;
  dag_options.num_tasks = static_cast<std::size_t>(*tasks);
  const auto dags = generate_random_dags(
      dag_options, static_cast<std::size_t>(*examples), rng);
  std::printf("training set: %zu DAGs x %lld tasks\n", dags.size(),
              static_cast<long long>(*tasks));

  Policy policy = Policy::make(FeaturizerOptions{}, capacity.dims(), rng);
  std::printf("policy network: %zu parameters\n",
              policy.net().num_parameters());

  const bool checkpointing = !checkpoint_dir->empty();
  const std::size_t ckpt_every =
      *checkpoint_every > 0 ? static_cast<std::size_t>(*checkpoint_every) : 1;
  std::unique_ptr<ckpt::CheckpointManager> manager;
  std::optional<ckpt::LoadedCheckpoint> loaded;
  if (checkpointing) {
    ckpt::CheckpointManagerOptions mo;
    mo.dir = *checkpoint_dir;
    manager = std::make_unique<ckpt::CheckpointManager>(std::move(mo));
    ckpt::install_signal_handlers();
    if (*resume) {
      loaded = manager->load_latest();
      if (loaded) {
        std::printf("resuming from generation %llu (%s, epoch %llu)\n",
                    static_cast<unsigned long long>(loaded->generation),
                    loaded->state.phase.c_str(),
                    static_cast<unsigned long long>(loaded->state.next_epoch));
      }
    }
  }
  const auto save_and_exit = [&](const ckpt::TrainerState& state) {
    std::printf("stop requested; checkpointing %s at epoch %llu\n",
                state.phase.c_str(),
                static_cast<unsigned long long>(state.next_epoch));
    manager->save(state);
    return 0;
  };

  // Stage 1: imitation of the CP heuristic (skipped when resuming into
  // REINFORCE — the checkpoint holds the warmed-up weights already).
  const bool skip_imitation =
      loaded && loaded->state.phase == ckpt::kPhaseReinforce;
  if (!skip_imitation) {
    ImitationOptions imitation;
    imitation.epochs = static_cast<std::size_t>(*imitation_epochs);
    auto demos = collect_cp_demonstrations(policy, dags, capacity,
                                           imitation.jump_on_process);
    ImitationTrainer warmup(policy, std::move(demos), imitation, rng);
    if (loaded && loaded->state.phase == ckpt::kPhaseImitation) {
      warmup.restore(loaded->state);
    }
    while (!warmup.done()) {
      if (checkpointing && ckpt::stop_requested()) {
        return save_and_exit(warmup.checkpoint_state());
      }
      const std::size_t e = warmup.next_epoch();
      const double loss = warmup.run_epoch();
      std::printf("imitation epoch %3zu  CE loss %.4f\n", e, loss);
      if (checkpointing && warmup.next_epoch() % ckpt_every == 0) {
        manager->save(warmup.checkpoint_state());
      }
    }
  }

  // Stage 2: REINFORCE.
  ReinforceOptions rl;
  rl.epochs = static_cast<std::size_t>(*rl_epochs);
  rl.rollouts_per_example = static_cast<std::size_t>(*rollouts);
  ReinforceTrainer trainer(policy, dags, capacity, rl, rng);
  if (skip_imitation) trainer.restore(loaded->state);
  for (std::size_t e = 0; e < trainer.result().epoch_mean_makespan.size();
       ++e) {
    std::printf("REINFORCE epoch %4zu  mean makespan %.2f\n", e,
                trainer.result().epoch_mean_makespan[e]);
  }
  while (!trainer.done()) {
    if (checkpointing && ckpt::stop_requested()) {
      return save_and_exit(trainer.checkpoint_state());
    }
    const std::size_t e = trainer.next_epoch();
    const double makespan = trainer.run_epoch();
    std::printf("REINFORCE epoch %4zu  mean makespan %.2f\n", e, makespan);
    if (checkpointing &&
        (trainer.next_epoch() % ckpt_every == 0 || trainer.done())) {
      manager->save(trainer.checkpoint_state());
    }
  }
  const auto rl_result = trainer.finalize();

  save_mlp(policy.net(), *model_path);
  std::printf("saved model to %s\n", model_path->c_str());

  if (!curve_path->empty()) {
    CsvWriter csv(*curve_path);
    csv.write("epoch", "mean_makespan");
    for (std::size_t e = 0; e < rl_result.epoch_mean_makespan.size(); ++e) {
      csv.write(static_cast<long long>(e), rl_result.epoch_mean_makespan[e]);
    }
    std::printf("saved learning curve to %s\n", curve_path->c_str());
  }
  return 0;
}
