// Full §IV training pipeline with every knob exposed:
//
//   1. generate a training set of random DAGs;
//   2. supervised pre-training by imitating the critical-path heuristic;
//   3. REINFORCE with an averaged-rollout baseline;
//   4. save the model and the learning curve.
//
//   ./build/examples/train_policy --examples 24 --tasks 25 --imitation-epochs 10
//       --rl-epochs 50 --rollouts 8 --model policy.txt --curve curve.csv
//
// Paper-scale values (--examples 144 --tasks 25 --rl-epochs 7000
// --rollouts 20) reproduce Fig. 8(b) but need many hours on one core.

#include <cstdio>
#include <memory>

#include "common/csv.h"
#include "common/flags.h"
#include "core/spear.h"
#include "dag/generator.h"
#include "nn/serialize.h"
#include "rl/imitation.h"
#include "rl/reinforce.h"

int main(int argc, char** argv) {
  using namespace spear;

  Flags flags;
  const auto examples = flags.define_int("examples", 24, "training DAGs");
  const auto tasks = flags.define_int("tasks", 25, "tasks per training DAG");
  const auto imitation_epochs =
      flags.define_int("imitation-epochs", 10, "supervised epochs");
  const auto rl_epochs = flags.define_int("rl-epochs", 40, "REINFORCE epochs");
  const auto rollouts =
      flags.define_int("rollouts", 8, "rollouts per example (paper: 20)");
  const auto seed = flags.define_int("seed", 7, "random seed");
  const auto model_path =
      flags.define_string("model", "spear_policy.txt", "model output path");
  const auto curve_path =
      flags.define_string("curve", "", "learning-curve CSV output path");
  flags.parse(argc, argv);

  const ResourceVector capacity{1.0, 1.0};
  Rng rng(static_cast<std::uint64_t>(*seed));

  DagGeneratorOptions dag_options;
  dag_options.num_tasks = static_cast<std::size_t>(*tasks);
  const auto dags = generate_random_dags(
      dag_options, static_cast<std::size_t>(*examples), rng);
  std::printf("training set: %zu DAGs x %lld tasks\n", dags.size(),
              static_cast<long long>(*tasks));

  Policy policy = Policy::make(FeaturizerOptions{}, capacity.dims(), rng);
  std::printf("policy network: %zu parameters\n",
              policy.net().num_parameters());

  // Stage 1: imitation of the CP heuristic.
  ImitationOptions imitation;
  imitation.epochs = static_cast<std::size_t>(*imitation_epochs);
  const auto imitation_result =
      pretrain_on_cp(policy, dags, capacity, imitation, rng);
  for (std::size_t e = 0; e < imitation_result.epoch_losses.size(); ++e) {
    std::printf("imitation epoch %3zu  CE loss %.4f\n", e,
                imitation_result.epoch_losses[e]);
  }

  // Stage 2: REINFORCE.
  ReinforceOptions rl;
  rl.epochs = static_cast<std::size_t>(*rl_epochs);
  rl.rollouts_per_example = static_cast<std::size_t>(*rollouts);
  const auto rl_result = train_reinforce(
      policy, dags, capacity, rl, rng, [](std::size_t epoch, double makespan) {
        std::printf("REINFORCE epoch %4zu  mean makespan %.2f\n", epoch,
                    makespan);
      });

  save_mlp(policy.net(), *model_path);
  std::printf("saved model to %s\n", model_path->c_str());

  if (!curve_path->empty()) {
    CsvWriter csv(*curve_path);
    csv.write("epoch", "mean_makespan");
    for (std::size_t e = 0; e < rl_result.epoch_mean_makespan.size(); ++e) {
      csv.write(static_cast<long long>(e), rl_result.epoch_mean_makespan[e]);
    }
    std::printf("saved learning curve to %s\n", curve_path->c_str());
  }
  return 0;
}
