// Head-to-head comparison of all schedulers over a batch of random DAGs —
// the workhorse example for exploring the library.
//
//   ./build/examples/compare_schedulers --jobs 10 --tasks 50 --budget 200 --csv results.csv
//
// Prints per-job makespans and a summary (mean makespan + win rate vs
// Graphene), optionally writing every row as CSV.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/csv.h"
#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/spear.h"
#include "dag/generator.h"
#include "sched/critical_path.h"
#include "sched/graphene.h"
#include "sched/sjf.h"
#include "sched/tetris.h"

int main(int argc, char** argv) {
  using namespace spear;

  Flags flags;
  const auto jobs = flags.define_int("jobs", 10, "number of random DAGs");
  const auto tasks = flags.define_int("tasks", 40, "tasks per DAG");
  const auto budget = flags.define_int("budget", 150, "Spear/MCTS budget");
  const auto seed = flags.define_int("seed", 7, "random seed");
  const auto train = flags.define_bool(
      "train", true, "train a policy for Spear (otherwise MCTS only)");
  const auto csv_path = flags.define_string("csv", "", "write rows as CSV");
  flags.parse(argc, argv);

  const ResourceVector capacity{1.0, 1.0};
  Rng rng(static_cast<std::uint64_t>(*seed));
  DagGeneratorOptions dag_options;
  dag_options.num_tasks = static_cast<std::size_t>(*tasks);
  const auto dags =
      generate_random_dags(dag_options, static_cast<std::size_t>(*jobs), rng);

  // Scheduler lineup.
  std::vector<std::unique_ptr<Scheduler>> schedulers;
  if (*train) {
    std::printf("Training the Spear policy...\n");
    SpearTrainingOptions training;
    training.num_examples = 8;
    training.tasks_per_example = 15;
    training.imitation_epochs = 8;
    training.reinforce_epochs = 10;
    training.rollouts_per_example = 4;
    training.seed = static_cast<std::uint64_t>(*seed);
    auto policy =
        std::make_shared<const Policy>(train_default_spear_policy(training));
    SpearOptions spear_options;
    spear_options.initial_budget = *budget;
    spear_options.min_budget = std::max<std::int64_t>(*budget / 4, 1);
    schedulers.push_back(make_spear_scheduler(policy, spear_options));
  }
  schedulers.push_back(
      make_mcts_scheduler(*budget, std::max<std::int64_t>(*budget / 4, 1)));
  schedulers.push_back(make_tetris_scheduler());
  schedulers.push_back(make_sjf_scheduler());
  schedulers.push_back(make_critical_path_scheduler());
  schedulers.push_back(make_graphene_scheduler());

  std::vector<std::string> headers = {"job"};
  for (const auto& s : schedulers) headers.push_back(s->name());
  Table table(headers);

  std::unique_ptr<CsvWriter> csv;
  if (!csv_path->empty()) {
    csv = std::make_unique<CsvWriter>(*csv_path);
    csv->write_row(headers);
  }

  std::vector<std::vector<double>> makespans(schedulers.size());
  for (std::size_t j = 0; j < dags.size(); ++j) {
    std::vector<std::string> row = {std::to_string(j)};
    for (std::size_t s = 0; s < schedulers.size(); ++s) {
      const auto makespan =
          validated_makespan(*schedulers[s], dags[j], capacity);
      makespans[s].push_back(static_cast<double>(makespan));
      row.push_back(std::to_string(makespan));
    }
    table.add_row(row);
    if (csv) csv->write_row(row);
  }
  table.print();

  // Summary: mean makespan and win rate against the last column (Graphene).
  std::printf("\n");
  Table summary({"scheduler", "mean makespan", "wins vs Graphene"});
  const auto& graphene_makespans = makespans.back();
  for (std::size_t s = 0; s < schedulers.size(); ++s) {
    summary.add(schedulers[s]->name(), mean(makespans[s]),
                win_rate(makespans[s], graphene_makespans));
  }
  summary.print();
  return 0;
}
