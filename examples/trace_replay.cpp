// Production-trace replay (§V-C): generate (or load) the synthetic 99-job
// Hive/MapReduce trace, print its characteristics, and replay every job
// through MCTS/Graphene/Tetris, reporting the per-job makespan reduction
// relative to Graphene — the experiment behind Fig. 9(c).
//
//   ./build/examples/trace_replay --jobs 12 --budget 100
//   ./build/examples/trace_replay --save trace.csv          # persist trace
//   ./build/examples/trace_replay --load trace.csv          # replay saved

#include <cstdio>
#include <memory>

#include "common/flags.h"
#include "common/stats.h"
#include "common/table.h"
#include "core/spear.h"
#include "sched/graphene.h"
#include "sched/tetris.h"
#include "trace/mapreduce.h"
#include "trace/trace_io.h"

int main(int argc, char** argv) {
  using namespace spear;

  Flags flags;
  const auto jobs_limit =
      flags.define_int("jobs", 12, "jobs to replay (0 = whole trace)");
  const auto budget = flags.define_int("budget", 100, "MCTS budget");
  const auto seed = flags.define_int("seed", 3, "trace generation seed");
  const auto save_path = flags.define_string("save", "", "save trace as CSV");
  const auto load_path = flags.define_string("load", "", "load trace CSV");
  flags.parse(argc, argv);

  const ResourceVector capacity{1.0, 1.0};

  std::vector<MapReduceJob> jobs;
  if (!load_path->empty()) {
    jobs = load_trace(*load_path);
    std::printf("loaded %zu jobs from %s\n", jobs.size(), load_path->c_str());
  } else {
    Rng rng(static_cast<std::uint64_t>(*seed));
    jobs = generate_trace({}, rng);
  }
  if (!save_path->empty()) {
    save_trace(jobs, *save_path);
    std::printf("saved trace to %s\n", save_path->c_str());
  }

  const auto stats = compute_trace_stats(jobs);
  std::printf(
      "trace: %zu jobs | map tasks median %.0f max %zu | reduce tasks median "
      "%.0f max %zu | median runtimes map %.0f reduce %.0f\n\n",
      jobs.size(), stats.median_map_tasks, stats.max_map_tasks,
      stats.median_reduce_tasks, stats.max_reduce_tasks,
      stats.median_map_runtime, stats.median_reduce_runtime);

  if (*jobs_limit > 0 &&
      jobs.size() > static_cast<std::size_t>(*jobs_limit)) {
    jobs.resize(static_cast<std::size_t>(*jobs_limit));
  }

  auto mcts =
      make_mcts_scheduler(*budget, std::max<std::int64_t>(*budget / 2, 1));
  auto graphene = make_graphene_scheduler();
  auto tetris = make_tetris_scheduler();

  Table table({"job", "maps", "reduces", "MCTS", "Graphene", "Tetris",
               "reduction vs Graphene"});
  std::vector<double> reductions;
  for (const auto& job : jobs) {
    const Dag dag = mapreduce_to_dag(job);
    const auto m = validated_makespan(*mcts, dag, capacity);
    const auto g = validated_makespan(*graphene, dag, capacity);
    const auto t = validated_makespan(*tetris, dag, capacity);
    const double reduction =
        100.0 * (static_cast<double>(g) - static_cast<double>(m)) /
        static_cast<double>(g);
    reductions.push_back(reduction);
    char pct[32];
    std::snprintf(pct, sizeof(pct), "%+.1f%%", reduction);
    table.add(job.job_id, static_cast<long long>(job.num_map()),
              static_cast<long long>(job.num_reduce()),
              static_cast<long long>(m), static_cast<long long>(g),
              static_cast<long long>(t), pct);
  }
  table.print();

  const auto summary = summarize(reductions);
  std::printf("\nreduction vs Graphene: %s\n", to_string(summary).c_str());
  return 0;
}
