// Fig. 9(b): the production trace's task-runtime distributions per stage
// (paper: median map runtime 73 s, median reduce runtime 32 s, with wide
// per-job variation).  Our trace is the synthetic statistical match
// documented in DESIGN.md.

#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "support.h"
#include "trace/trace.h"

int main(int argc, char** argv) {
  using namespace spear;
  using namespace spear::bench;

  Flags flags;
  const auto seed = flags.define_int("seed", 3, "trace seed");
  const auto csv_prefix =
      flags.define_string("csv", "fig9b_trace_runtimes", "CSV output prefix");
  flags.parse(argc, argv);

  Rng rng(static_cast<std::uint64_t>(*seed));
  const auto jobs = generate_trace({}, rng);

  std::vector<double> map_runtimes, reduce_runtimes;
  std::vector<double> job_mean_map, job_mean_reduce;
  for (const auto& job : jobs) {
    double m = 0.0, r = 0.0;
    for (Time t : job.map_runtimes) {
      map_runtimes.push_back(static_cast<double>(t));
      m += static_cast<double>(t);
    }
    for (Time t : job.reduce_runtimes) {
      reduce_runtimes.push_back(static_cast<double>(t));
      r += static_cast<double>(t);
    }
    job_mean_map.push_back(m / static_cast<double>(job.num_map()));
    job_mean_reduce.push_back(r / static_cast<double>(job.num_reduce()));
  }

  Table table({"stage", "median runtime", "p25", "p75", "max",
               "per-job mean range"});
  auto range_of = [](const std::vector<double>& v) {
    char buf[64];
    std::snprintf(buf, sizeof(buf), "[%.0f, %.0f]", min_of(v), max_of(v));
    return std::string(buf);
  };
  table.add("map", median(map_runtimes), percentile(map_runtimes, 25),
            percentile(map_runtimes, 75), max_of(map_runtimes),
            range_of(job_mean_map));
  table.add("reduce", median(reduce_runtimes), percentile(reduce_runtimes, 25),
            percentile(reduce_runtimes, 75), max_of(reduce_runtimes),
            range_of(job_mean_reduce));
  std::printf("Trace task runtimes over %zu jobs (Fig. 9b — paper: stage "
              "medians 73 s map / 32 s reduce, wide per-job spread):\n",
              jobs.size());
  table.print();

  write_cdf_csv(*csv_prefix + "_map.csv", "map_runtime", map_runtimes);
  write_cdf_csv(*csv_prefix + "_reduce.csv", "reduce_runtime",
                reduce_runtimes);
  return 0;
}
