// Robustness sweep: makespan and recovery counters vs the per-attempt
// failure rate, for Spear, pure MCTS, Tetris, and CP.
//
// Every scheduler sees the SAME deterministic fault trace per (DAG, rate):
// the injector seed is fault_seed ^ dag index, and outcomes are a pure
// function of (seed, task, attempt) — so a re-run with the same --fault-seed
// writes a byte-identical fault_sweep.csv.  The heuristics run greedily
// through the fault-aware environment (see fault/runner.h); the search
// schedulers plan with rollouts that anticipate the same trace.
//
// Jobs the retry policy aborts are counted in the `aborts` column and
// excluded from the makespan mean (an all-abort cell reports -1).
//
// Scaled default: 5 DAGs x 25 tasks, rates {0, 0.05, 0.1, 0.2};
// --paper = 10 x 50 with rates up to 0.4.  --time-budget-ms > 0 additionally
// exercises the anytime search (degradations column); it trades
// reproducibility for bounded latency, so the byte-identical guarantee
// holds only at the default of 0.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "fault/runner.h"
#include "support.h"

int main(int argc, char** argv) {
  using namespace spear;
  using namespace spear::bench;

  Flags flags;
  const auto paper = flags.define_bool("paper", false, "paper-scale run");
  const auto jobs = flags.define_int("jobs", 5, "number of DAGs");
  const auto tasks = flags.define_int("tasks", 25, "tasks per DAG");
  const auto seed = flags.define_int("seed", 11, "workload seed");
  const auto fault_seed =
      flags.define_int("fault-seed", 1, "fault injector seed");
  const auto fault_rate = flags.define_double(
      "fault-rate", -1.0,
      "run only this per-attempt failure rate (< 0 = built-in sweep)");
  const auto straggler_rate = flags.define_double(
      "straggler-rate", 0.0, "per-attempt straggler probability");
  const auto loss_windows = flags.define_int(
      "loss-windows", 0, "transient capacity-loss windows per DAG");
  const auto max_retries =
      flags.define_int("max-retries", 3, "retries per task before abort");
  const auto time_budget_ms = flags.define_int(
      "time-budget-ms", 0, "anytime per-decision budget for MCTS/Spear "
      "(0 = unlimited, deterministic)");
  const auto mcts_budget = flags.define_int("mcts-budget", 200, "MCTS budget");
  const auto policy_path = flags.define_string(
      "policy", "bench_policy.txt", "policy cache file (empty = retrain)");
  const auto csv_path =
      flags.define_string("csv", "fault_sweep.csv", "CSV output");
  ObsFlags obs_flags(flags);
  flags.parse(argc, argv);
  obs_flags.install();

  const std::size_t n_jobs = *paper ? 10 : static_cast<std::size_t>(*jobs);
  const std::size_t n_tasks = *paper ? 50 : static_cast<std::size_t>(*tasks);
  const std::vector<double> rates =
      *fault_rate >= 0.0
          ? std::vector<double>{*fault_rate}
          : *paper ? std::vector<double>{0.0, 0.05, 0.1, 0.2, 0.3, 0.4}
                   : std::vector<double>{0.0, 0.05, 0.1, 0.2};
  const std::int64_t b_mcts = *mcts_budget;
  const std::int64_t b_spear = std::max<std::int64_t>(b_mcts / 10, 1);

  const ResourceVector capacity{1.0, 1.0};
  const auto dags =
      simulation_workload(n_jobs, n_tasks, static_cast<std::uint64_t>(*seed));

  SpearTrainingOptions training;
  auto policy = get_or_train_policy(*policy_path, training);

  RetryOptions retry;
  retry.max_retries = static_cast<int>(*max_retries);

  // Builds the (identical across schedulers) injector for one (DAG, rate)
  // cell; null when nothing is perturbed, so rate 0 with the default flags
  // is the bit-exact idealized run.
  const auto make_injector =
      [&](double rate,
          std::size_t dag_index) -> std::shared_ptr<const FaultInjector> {
    FaultOptions fault_options;
    fault_options.fault_rate = rate;
    fault_options.straggler_rate = *straggler_rate;
    fault_options.num_loss_windows = static_cast<std::size_t>(*loss_windows);
    fault_options.seed = static_cast<std::uint64_t>(*fault_seed) ^
                         (static_cast<std::uint64_t>(dag_index) + 1);
    auto injector =
        std::make_shared<const FaultInjector>(fault_options, capacity);
    return injector->active() ? injector : nullptr;
  };

  struct CellStats {
    std::vector<double> makespans;  // completed jobs only
    long long failures = 0;
    long long retries = 0;
    long long aborts = 0;
    long long degradations = 0;
  };

  const std::vector<std::string> scheduler_names = {"Spear", "MCTS", "Tetris",
                                                    "CP"};
  Table table({"scheduler", "fault rate", "mean makespan", "failures",
               "retries", "aborts", "degradations"});
  CsvWriter csv(*csv_path);
  csv.write("scheduler", "fault_rate", "mean_makespan", "failures", "retries",
            "aborts", "degradations");

  for (const double rate : rates) {
    std::vector<CellStats> cells(scheduler_names.size());
    for (std::size_t j = 0; j < dags.size(); ++j) {
      const auto faults = make_injector(rate, j);

      // Search schedulers: plan under the injected trace.
      for (std::size_t s = 0; s < 2; ++s) {
        std::unique_ptr<MctsScheduler> scheduler;
        if (s == 0) {
          SpearOptions spear_options;
          spear_options.initial_budget = b_spear;
          spear_options.min_budget = std::max<std::int64_t>(b_spear / 2, 1);
          spear_options.time_budget_ms = *time_budget_ms;
          spear_options.faults = faults;
          spear_options.retry = retry;
          scheduler = make_spear_scheduler(policy, spear_options);
        } else {
          MctsOptions mcts;
          mcts.initial_budget = b_mcts;
          mcts.min_budget = 5;
          mcts.time_budget_ms = *time_budget_ms;
          mcts.faults = faults;
          mcts.retry = retry;
          scheduler = std::make_unique<MctsScheduler>(mcts);
        }
        CellStats& cell = cells[s];
        try {
          const Schedule schedule = scheduler->schedule(dags[j], capacity);
          const auto error =
              faults ? schedule.validate_under_faults(dags[j], capacity,
                                                      *faults)
                     : schedule.validate(dags[j], capacity);
          if (error) {
            std::fprintf(stderr, "%s produced an invalid schedule: %s\n",
                         scheduler_names[s].c_str(), error->c_str());
            return 1;
          }
          cell.makespans.push_back(
              static_cast<double>(schedule.makespan(dags[j])));
        } catch (const JobAbortedError&) {
          ++cell.aborts;
        }
        const auto& stats = scheduler->last_stats();
        cell.failures += stats.task_failures;
        cell.retries += stats.task_retries;
        cell.degradations += stats.degradations;
      }

      // Heuristics: react greedily through the fault-aware environment.
      for (std::size_t s = 2; s < scheduler_names.size(); ++s) {
        std::unique_ptr<DecisionPolicy> heuristic;
        if (s == 2) {
          heuristic = std::make_unique<TetrisDecisionPolicy>();
        } else {
          heuristic = std::make_unique<CpDecisionPolicy>();
        }
        const auto run = run_policy_under_faults(*heuristic, dags[j], capacity,
                                                 faults, retry);
        CellStats& cell = cells[s];
        if (run.aborted) {
          ++cell.aborts;
        } else {
          const auto error =
              faults ? run.schedule.validate_under_faults(dags[j], capacity,
                                                          *faults)
                     : run.schedule.validate(dags[j], capacity);
          if (error) {
            std::fprintf(stderr, "%s produced an invalid schedule: %s\n",
                         scheduler_names[s].c_str(), error->c_str());
            return 1;
          }
          cell.makespans.push_back(static_cast<double>(run.makespan));
        }
        cell.failures += run.fault_stats.failures;
        cell.retries += run.fault_stats.retries;
      }
    }

    for (std::size_t s = 0; s < scheduler_names.size(); ++s) {
      const CellStats& cell = cells[s];
      const double mean_makespan =
          cell.makespans.empty() ? -1.0 : mean(cell.makespans);
      table.add(scheduler_names[s], rate, mean_makespan, cell.failures,
                cell.retries, cell.aborts, cell.degradations);
      csv.write(scheduler_names[s], rate, mean_makespan, cell.failures,
                cell.retries, cell.aborts, cell.degradations);
    }
    std::printf("fault rate %.2f done\n", rate);
  }

  std::printf("\nMakespan and recovery counters vs failure rate (same "
              "deterministic fault trace for every scheduler):\n");
  table.print();

  if (obs_flags.enabled()) {
    obs::RunReport report("bench_fault_sweep");
    report.set("jobs", static_cast<std::int64_t>(n_jobs));
    report.set("tasks", static_cast<std::int64_t>(n_tasks));
    report.set("fault_seed", *fault_seed);
    report.set("max_retries", *max_retries);
    report.set("time_budget_ms", *time_budget_ms);
    report.set("num_rates", static_cast<std::int64_t>(rates.size()));
    obs_flags.finish(report);
  }
  return 0;
}
