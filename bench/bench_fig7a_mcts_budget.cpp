// Fig. 7(a): pure-MCTS average makespan as a function of the search budget
// (paper: 100 DAGs x 100 tasks, min budget 5, budgets ~500..2200; the
// makespan decreases monotonically-ish with budget).
//
// Scaled default: 8 DAGs x 30 tasks, budgets {25, 50, 100, 200, 400};
// --paper = 100 x 100 with budgets {500, 1000, 1500, 2200}.

#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "support.h"

int main(int argc, char** argv) {
  using namespace spear;
  using namespace spear::bench;

  Flags flags;
  const auto paper = flags.define_bool("paper", false, "paper-scale run");
  const auto jobs = flags.define_int("jobs", 20, "number of DAGs");
  const auto tasks = flags.define_int("tasks", 30, "tasks per DAG");
  const auto seed = flags.define_int("seed", 7, "workload seed");
  const auto csv_path =
      flags.define_string("csv", "fig7a_mcts_budget.csv", "CSV output");
  flags.parse(argc, argv);

  const std::size_t n_jobs = *paper ? 100 : static_cast<std::size_t>(*jobs);
  const std::size_t n_tasks = *paper ? 100 : static_cast<std::size_t>(*tasks);
  const std::vector<std::int64_t> budgets =
      *paper ? std::vector<std::int64_t>{500, 800, 1000, 1500, 2200}
             : std::vector<std::int64_t>{25, 100, 400, 800, 1600, 3200};

  const ResourceVector capacity{1.0, 1.0};
  const auto dags =
      simulation_workload(n_jobs, n_tasks, static_cast<std::uint64_t>(*seed));

  Table table({"budget", "average makespan"});
  CsvWriter csv(*csv_path);
  csv.write("budget", "average_makespan");

  for (const std::int64_t budget : budgets) {
    std::vector<double> makespans;
    for (const auto& dag : dags) {
      auto mcts = make_mcts_scheduler(budget, /*min_budget=*/5);
      makespans.push_back(
          static_cast<double>(validated_makespan(*mcts, dag, capacity)));
    }
    const double avg = mean(makespans);
    table.add(static_cast<long long>(budget), avg);
    csv.write(static_cast<long long>(budget), avg);
    std::printf("budget %lld done (avg %.1f)\n",
                static_cast<long long>(budget), avg);
  }

  std::printf("\nMCTS makespan vs budget (Fig. 7a — average makespan should "
              "decrease as the budget grows):\n");
  table.print();
  return 0;
}
