// Table I: wall-clock runtime of the pure-MCTS scheduler as a function of
// graph size and budget (paper: sizes {50, 100} x budgets {500, 1000} on a
// 24-core GCP VM; runtime grows with both size and budget).
//
// Absolute numbers differ on this single-core container; the shape to
// reproduce is the monotone growth along both axes.
//
// Default: the paper's own grid — pure MCTS in C++ is fast enough that no
// scaled-down variant is needed.  --threads N runs the root-parallel
// search; besides the runtime, every cell reports the search telemetry
// (per-decision wall time, iterations, rollouts, iterations/sec).

#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "support.h"

int main(int argc, char** argv) {
  using namespace spear;
  using namespace spear::bench;

  Flags flags;
  const auto jobs = flags.define_int("jobs", 3, "DAGs per cell (averaged)");
  const auto seed = flags.define_int("seed", 9, "workload seed");
  const auto threads =
      flags.define_int("threads", 1, "parallel search workers");
  const auto search_mode = flags.define_string(
      "search-mode", "root",
      "parallel search architecture: root (per-worker trees) or leaf "
      "(shared tree + batched central evaluator)");
  const auto tree_reuse = flags.define_bool(
      "tree-reuse", true,
      "leaf mode: reuse the chosen subtree across decisions "
      "(--no-tree-reuse disables)");
  const auto csv_path =
      flags.define_string("csv", "table1_mcts_runtime.csv", "CSV output");
  ObsFlags obs_flags(flags);
  flags.parse(argc, argv);
  obs_flags.install();
  const SearchMode mode = parse_search_mode(*search_mode);

  // The pure-MCTS search is fast enough in C++ that the paper's own grid
  // is the default — no scaled-down variant needed.
  const std::vector<std::size_t> sizes = {50, 100};
  const std::vector<std::int64_t> budgets = {500, 1000};

  const ResourceVector capacity{1.0, 1.0};

  std::vector<std::string> headers = {"graph size \\ budget"};
  for (const auto b : budgets) headers.push_back(std::to_string(b));
  Table table(headers);
  table.set_precision(3);
  Table telemetry({"graph size", "budget", "s/job", "s/decision",
                   "iterations", "rollouts", "iters/sec"});
  telemetry.set_precision(4);
  CsvWriter csv(*csv_path);
  csv.write("graph_size", "budget", "seconds", "sec_per_decision",
            "iterations", "rollouts", "iters_per_sec");

  for (const std::size_t size : sizes) {
    const auto dags = simulation_workload(
        static_cast<std::size_t>(*jobs), size,
        static_cast<std::uint64_t>(*seed) + size);
    std::vector<std::string> row = {std::to_string(size)};
    for (const std::int64_t budget : budgets) {
      double total = 0.0;
      double search_seconds = 0.0;
      std::int64_t decisions = 0, iterations = 0, rollouts = 0;
      for (const auto& dag : dags) {
        auto mcts = make_mcts_scheduler(budget, /*min_budget=*/5,
                                        /*seed=*/42,
                                        static_cast<int>(*threads), mode,
                                        *tree_reuse);
        total += timed_makespan(*mcts, dag, capacity).seconds;
        const auto& stats = mcts->last_stats();
        search_seconds += stats.search_seconds;
        decisions += stats.decisions;
        iterations += stats.iterations;
        rollouts += stats.rollouts;
      }
      const auto n = static_cast<double>(dags.size());
      const double avg = total / n;
      const double sec_per_decision =
          decisions > 0 ? search_seconds / static_cast<double>(decisions)
                        : 0.0;
      const double iters_per_sec =
          search_seconds > 0.0
              ? static_cast<double>(iterations) / search_seconds
              : 0.0;
      char cell[32];
      std::snprintf(cell, sizeof(cell), "%.3f", avg);
      row.push_back(cell);
      csv.write(static_cast<long long>(size), static_cast<long long>(budget),
                avg, sec_per_decision,
                static_cast<long long>(iterations),
                static_cast<long long>(rollouts), iters_per_sec);
      telemetry.add(static_cast<long long>(size),
                    static_cast<long long>(budget), avg, sec_per_decision,
                    static_cast<long long>(iterations),
                    static_cast<long long>(rollouts), iters_per_sec);
      std::printf("size %zu budget %lld done (%.3f s/job)\n", size,
                  static_cast<long long>(budget), avg);
    }
    table.add_row(row);
  }

  std::printf("\nMCTS scheduling runtime in seconds per job (Table I — must "
              "grow with graph size and with budget; threads=%lld):\n",
              static_cast<long long>(*threads));
  table.print();
  std::printf("\nSearch telemetry (totals over %lld jobs per cell):\n",
              static_cast<long long>(*jobs));
  telemetry.print();

  if (obs_flags.enabled()) {
    obs::RunReport report("bench_table1");
    report.set("jobs_per_cell", *jobs);
    report.set("threads", *threads);
    report.set("search_mode", *search_mode);
    report.set("seed", *seed);
    obs_flags.finish(report);
  }
  return 0;
}
