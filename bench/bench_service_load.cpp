// Load/robustness bench for the scheduling service (DESIGN.md §12): drives
// an in-process SchedulerService with seeded Poisson arrivals and reports
// throughput, latency percentiles, the shed rate, the degradation-ladder
// counts, and the inference telemetry (forwards/sec, batch-occupancy
// p50/p99).  The overload soak criterion — sustained 2x arrival rate,
// bounded queue, zero crashes, every request answered — runs as
//
//   ./bench_service_load --rate-multiplier=2 --duration-s=60
//
// Defaults are scaled to finish in seconds; --duration-s stretches the run.
// Requests are generated open-loop (arrivals do not wait for responses),
// which is what makes overload real: when the service falls behind, the
// admission queue fills and try_push sheds.
//
// --guide=drl (default) serves with an untrained paper-topology policy
// network so the request path exercises real inference; --guide=none is
// the pre-§15 unguided MCTS.
//
// --infer-mode selects the forward routing (DESIGN.md §15): private =
// per-worker network copies, shared = the process-wide batched inference
// service, compare = run private THEN shared at the SAME calibrated
// arrival rate and report both side by side (optionally as JSON via
// --json, the committed BENCH_shared_inference.json artifact).  Placements
// are bit-identical across modes; the comparison is jobs/sec and physical
// forward batch occupancy at equal schedule quality (mean makespan).
//
// --two-tenant switches to the fairness scenario (DESIGN.md §13): two
// tenants with configured DRR weights (--tenant-weights=3,1) and SKEWED
// arrivals — the low-weight tenant submits most of the traffic (--skew is
// tenant a's arrival share) — both saturating, with per-tenant queue quotas
// so neither can crowd the other out of the shared queue at admission.
// Reports per-tenant p50/p99 latency, the max starvation gap (longest wall
// time either tenant waited between consecutive placements), and checks the
// measured placement shares land within 10% of the configured weight shares
// — exit 1 otherwise.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "dag/io.h"
#include "infer/service.h"
#include "support.h"
#include "svc/service.h"

using namespace spear;
using namespace spear::svc;

namespace {

// Client-side per-tenant accounting for the --two-tenant scenario.  A
// "dequeue" is any response proving the scheduler took the tenant's job off
// the queue: placed, or deadline_expired discovered AT dequeue.  Admission
// sheds never reach the queue and do not count.  DRR controls dequeues, so
// the weight-share check is computed over dequeues — robust even when a
// tight --budget-ms expires most of the slow tenant's backlog.
struct TenantTrack {
  std::vector<double> latency_ms;  // placed responses only
  std::int64_t dequeues = 0;
  bool seen = false;
  std::chrono::steady_clock::time_point last{};
  double max_gap_ms = 0.0;  // longest wall gap between consecutive dequeues
};

bool parse_weight_pair(const std::string& text, double* a, double* b) {
  const auto comma = text.find(',');
  if (comma == std::string::npos) return false;
  try {
    std::size_t used = 0;
    *a = std::stod(text.substr(0, comma), &used);
    if (used != comma) return false;
    const std::string rest = text.substr(comma + 1);
    *b = std::stod(rest, &used);
    if (used != rest.size()) return false;
  } catch (const std::exception&) {
    return false;
  }
  return *a > 0.0 && *b > 0.0;
}

/// One load run's fixed inputs (everything varied between the compare
/// mode's private/shared passes lives in `options`).
struct LoadParams {
  ServiceOptions options;
  const std::vector<std::string>* pool_text = nullptr;
  std::int64_t jobs = 0;
  std::int64_t duration_s = 0;
  double arrival_rate = 0.0;  // already multiplied
  std::int64_t budget_ms = 0;
  std::uint64_t seed = 0;
  bool two_tenant = false;
  double skew = 0.35;
};

/// One load run's measurements.  Physical forward telemetry comes from the
/// ledger in private mode (logical == physical) and from the
/// InferenceService in shared mode (logical forwards fuse into fewer,
/// wider physical ones — the entire point).
struct LoadOutcome {
  ServiceCounters c;
  double elapsed_s = 0.0;
  std::int64_t submitted = 0;
  std::int64_t answered = 0;
  std::vector<double> latency_ms;
  std::vector<double> queue_ms;
  std::map<std::string, TenantTrack> tenant_track;
  double makespan_sum = 0.0;  // placed responses, schedule-quality evidence
  bool shared = false;
  infer::InferenceStats infer_stats;  // shared mode only
  std::size_t infer_batch_max = 0;
  bool lost_requests = false;

  double jobs_per_sec() const {
    return elapsed_s > 0.0 ? static_cast<double>(c.placed) / elapsed_s : 0.0;
  }
  double mean_makespan() const {
    return c.placed > 0 ? makespan_sum / static_cast<double>(c.placed) : 0.0;
  }
  std::int64_t physical_forwards() const {
    return shared ? infer_stats.forwards : c.search_forwards;
  }
  std::int64_t physical_rows() const {
    return shared ? infer_stats.rows : c.search_forward_rows;
  }
  const std::vector<std::int64_t>& physical_hist() const {
    return shared ? infer_stats.batch_rows_hist : c.forward_hist;
  }
  double forwards_per_sec() const {
    return elapsed_s > 0.0
               ? static_cast<double>(physical_forwards()) / elapsed_s
               : 0.0;
  }
  double mean_batch_rows() const {
    return physical_forwards() > 0
               ? static_cast<double>(physical_rows()) /
                     static_cast<double>(physical_forwards())
               : 0.0;
  }
};

/// Drives one open-loop Poisson run against a fresh service built from
/// `params.options` and returns every measurement; prints nothing (the
/// caller owns presentation, so the compare mode can run this twice).
LoadOutcome run_load(const LoadParams& params) {
  LoadOutcome out;
  out.shared = params.options.policy &&
               params.options.infer_mode == InferMode::kShared;
  out.infer_batch_max = params.options.infer.batch_max;

  SchedulerService service(params.options);
  service.start();

  // Open-loop Poisson arrivals: exponential inter-arrival gaps, submissions
  // never blocked on completions.  Latency samples cover ANSWERED requests
  // (placed or structurally rejected); shed/expired are counted separately.
  std::mt19937_64 rng(params.seed ^ 0x9e3779b9u);
  std::exponential_distribution<double> gap_s(params.arrival_rate);
  std::bernoulli_distribution pick_a(params.skew);

  std::mutex sample_mutex;
  std::atomic<std::int64_t> answered{0};

  const auto bench_start = std::chrono::steady_clock::now();
  const double horizon_s =
      params.duration_s > 0 ? static_cast<double>(params.duration_s) : 1e18;
  std::int64_t submitted = 0;
  auto next_arrival = bench_start;
  while (true) {
    if (params.duration_s > 0) {
      if (bench::seconds_since(bench_start) >= horizon_s) break;
    } else if (submitted >= params.jobs) {
      break;
    }
    next_arrival +=
        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
            std::chrono::duration<double>(gap_s(rng)));
    std::this_thread::sleep_until(next_arrival);

    SubmitRequest request;
    request.id = "j" + std::to_string(submitted);
    request.dag_text = (*params.pool_text)[static_cast<std::size_t>(
        submitted % static_cast<std::int64_t>(params.pool_text->size()))];
    request.budget_ms = params.budget_ms;
    std::string tenant;
    if (params.two_tenant) {
      tenant = pick_a(rng) ? "a" : "b";
      request.tenant = tenant;
    }
    const auto sent = std::chrono::steady_clock::now();
    service.submit(request, [&, sent, tenant](bool ok,
                                              const SubmitResult& result,
                                              const Rejection& rejection) {
      const auto now = std::chrono::steady_clock::now();
      const double total_ms =
          std::chrono::duration<double, std::milli>(now - sent).count();
      ++answered;
      const bool dequeued =
          ok || rejection.code == ErrorCode::kDeadlineExpired;
      if (ok || (!tenant.empty() && dequeued)) {
        std::lock_guard<std::mutex> lock(sample_mutex);
        if (ok) {
          out.latency_ms.push_back(total_ms);
          out.queue_ms.push_back(result.queue_ms);
          out.makespan_sum += static_cast<double>(result.makespan);
        }
        if (!tenant.empty() && dequeued) {
          TenantTrack& track = out.tenant_track[tenant];
          ++track.dequeues;
          if (track.seen) {
            const double gap_ms =
                std::chrono::duration<double, std::milli>(now - track.last)
                    .count();
            if (gap_ms > track.max_gap_ms) track.max_gap_ms = gap_ms;
          }
          track.seen = true;
          track.last = now;
          if (ok) track.latency_ms.push_back(total_ms);
        }
      }
    });
    ++submitted;
  }
  service.shutdown();  // drain: every admitted request gets its answer
  out.elapsed_s = bench::seconds_since(bench_start);
  out.submitted = submitted;
  out.answered = answered.load();
  out.c = service.counters();
  if (const infer::InferenceService* infer = service.infer_service()) {
    out.infer_stats = infer->stats();
  }

  // Invariant: nothing vanished — every submission was answered exactly
  // once (placed, structurally rejected, or cancelled).
  const std::int64_t accounted =
      out.c.placed + out.c.rejected_total() + out.c.cancelled;
  out.lost_requests =
      accounted != out.c.submitted || out.answered != out.submitted;
  return out;
}

void print_outcome(const LoadOutcome& out) {
  const ServiceCounters& c = out.c;
  const std::int64_t shed_total =
      c.rejected_queue_full + c.rejected_quota_exceeded;
  const double shed_rate =
      c.submitted > 0 ? static_cast<double>(shed_total) / c.submitted : 0.0;
  std::printf("submitted %lld in %.2fs (%.1f jobs/s offered)\n",
              static_cast<long long>(c.submitted), out.elapsed_s,
              c.submitted / out.elapsed_s);
  std::printf("placed %lld (%.1f jobs/s served), answered %lld\n",
              static_cast<long long>(c.placed), out.jobs_per_sec(),
              static_cast<long long>(out.answered));
  std::printf("shed %lld (%.1f%%: queue_full %lld + quota %lld), "
              "expired-in-queue %lld, shutdown %lld\n",
              static_cast<long long>(shed_total), 100.0 * shed_rate,
              static_cast<long long>(c.rejected_queue_full),
              static_cast<long long>(c.rejected_quota_exceeded),
              static_cast<long long>(c.rejected_deadline_expired),
              static_cast<long long>(c.rejected_shutting_down));
  std::printf("degraded: reduced %lld, heuristic %lld, "
              "search fallbacks %lld, deadline cutoffs %lld\n",
              static_cast<long long>(c.degraded_reduced),
              static_cast<long long>(c.degraded_heuristic),
              static_cast<long long>(c.search_degradations),
              static_cast<long long>(c.search_deadline_cutoffs));
  if (!out.latency_ms.empty()) {
    std::printf("latency ms: p50 %.2f  p99 %.2f  (queue p50 %.2f p99 %.2f)\n",
                percentile(out.latency_ms, 50), percentile(out.latency_ms, 99),
                percentile(out.queue_ms, 50), percentile(out.queue_ms, 99));
  }
  if (out.physical_forwards() > 0) {
    std::printf("inference: %lld forwards (%.1f/s), batch rows mean %.2f "
                "p50 %.0f p99 %.0f",
                static_cast<long long>(out.physical_forwards()),
                out.forwards_per_sec(), out.mean_batch_rows(),
                infer::hist_percentile(out.physical_hist(), 50.0),
                infer::hist_percentile(out.physical_hist(), 99.0));
    if (out.shared) {
      std::printf("  occupancy %.2f  queue-wait mean %.0fus\n"
                  "           fused %lld logical requests (%.2f per forward, "
                  "%.2f rows each)",
                  out.mean_batch_rows() /
                      static_cast<double>(out.infer_batch_max),
                  out.infer_stats.mean_queue_wait_us(),
                  static_cast<long long>(out.infer_stats.requests),
                  out.infer_stats.forwards > 0
                      ? static_cast<double>(out.infer_stats.requests) /
                            static_cast<double>(out.infer_stats.forwards)
                      : 0.0,
                  out.infer_stats.requests > 0
                      ? static_cast<double>(out.infer_stats.rows) /
                            static_cast<double>(out.infer_stats.requests)
                      : 0.0);
    }
    std::printf("\n");
  }
  if (c.placed > 0) {
    std::printf("mean makespan of placed jobs: %.2f\n", out.mean_makespan());
  }
  if (out.lost_requests) {
    std::fprintf(
        stderr, "ERROR: %lld submitted but only %lld accounted / %lld answered\n",
        static_cast<long long>(c.submitted),
        static_cast<long long>(c.placed + c.rejected_total() + c.cancelled),
        static_cast<long long>(out.answered));
  } else {
    std::printf("all %lld requests answered (zero lost)\n",
                static_cast<long long>(c.submitted));
  }
}

/// Writes the private-vs-shared comparison as a small JSON artifact
/// (BENCH_shared_inference.json): the acceptance evidence for the shared
/// batcher — jobs/sec, physical batch occupancy, and schedule quality.
void write_compare_json(const std::string& path, double arrival_rate,
                        int workers, const LoadOutcome& priv,
                        const LoadOutcome& shared) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (!f) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  const auto emit = [f](const char* name, const LoadOutcome& out) {
    std::fprintf(
        f,
        "  \"%s\": {\"placed\": %lld, \"submitted\": %lld, "
        "\"elapsed_s\": %.3f, \"jobs_per_sec\": %.3f, "
        "\"latency_p50_ms\": %.3f, \"latency_p99_ms\": %.3f, "
        "\"mean_makespan\": %.3f, \"forwards\": %lld, "
        "\"forward_rows\": %lld, \"forwards_per_sec\": %.1f, "
        "\"batch_rows_mean\": %.3f, \"batch_rows_p50\": %.0f, "
        "\"batch_rows_p99\": %.0f}",
        name, static_cast<long long>(out.c.placed),
        static_cast<long long>(out.c.submitted), out.elapsed_s,
        out.jobs_per_sec(),
        out.latency_ms.empty() ? 0.0 : percentile(out.latency_ms, 50),
        out.latency_ms.empty() ? 0.0 : percentile(out.latency_ms, 99),
        out.mean_makespan(), static_cast<long long>(out.physical_forwards()),
        static_cast<long long>(out.physical_rows()), out.forwards_per_sec(),
        out.mean_batch_rows(),
        infer::hist_percentile(out.physical_hist(), 50.0),
        infer::hist_percentile(out.physical_hist(), 99.0));
  };
  const double speedup = priv.jobs_per_sec() > 0.0
                             ? shared.jobs_per_sec() / priv.jobs_per_sec()
                             : 0.0;
  const double occupancy_gain =
      priv.mean_batch_rows() > 0.0
          ? shared.mean_batch_rows() / priv.mean_batch_rows()
          : 0.0;
  std::fprintf(f, "{\n  \"bench\": \"bench_service_load --infer-mode=compare\",\n");
  std::fprintf(f, "  \"workers\": %d,\n  \"arrival_rate\": %.2f,\n", workers,
               arrival_rate);
  std::fprintf(f, "  \"infer_batch_max\": %zu,\n", shared.infer_batch_max);
  emit("private", priv);
  std::fprintf(f, ",\n");
  emit("shared", shared);
  std::fprintf(f, ",\n  \"jobs_per_sec_speedup\": %.3f,\n", speedup);
  std::fprintf(f, "  \"batch_occupancy_gain\": %.3f,\n", occupancy_gain);
  std::fprintf(f, "  \"timeout_closes\": %lld,\n",
               static_cast<long long>(shared.infer_stats.timeout_closes));
  std::fprintf(f, "  \"full_closes\": %lld\n}\n",
               static_cast<long long>(shared.infer_stats.full_closes));
  std::fclose(f);
  std::printf("wrote %s\n", path.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  auto jobs = flags.define_int("jobs", 200, "total requests to submit");
  auto duration_s = flags.define_int(
      "duration-s", 0,
      "run for this many seconds instead of a fixed --jobs count");
  auto rate = flags.define_double(
      "rate", 0.0,
      "arrival rate in jobs/sec; 0 = calibrate to service capacity");
  auto rate_multiplier = flags.define_double(
      "rate-multiplier", 1.0,
      "scale the (calibrated or explicit) arrival rate; 2 = overload soak");
  auto workers = flags.define_int("workers", 2, "service workers");
  auto queue_cap = flags.define_int("queue-cap", 32, "admission queue cap");
  auto budget_ms =
      flags.define_int("budget-ms", 50, "per-request deadline budget");
  auto iterations =
      flags.define_int("iterations", 200, "full search iteration budget");
  auto min_iterations =
      flags.define_int("min-iterations", 50, "minimum iteration budget");
  auto tasks = flags.define_int("tasks", 12, "tasks per generated DAG");
  auto pool_size =
      flags.define_int("dag-pool", 24, "distinct DAGs cycled through");
  auto seed = flags.define_int("seed", 42, "RNG seed (DAGs and arrivals)");
  auto guide = flags.define_string(
      "guide", "drl",
      "search guide: drl = untrained paper-topology policy network (real "
      "inference on the serve path), none = unguided MCTS");
  auto infer_mode_flag = flags.define_string(
      "infer-mode", "private",
      "policy forward routing: private | shared | compare (run both at the "
      "same rate and report side by side)");
  auto infer_batch_max = flags.define_int(
      "infer-batch-max", 64, "shared inference: close a batch at this many rows");
  auto infer_batch_timeout_us = flags.define_int(
      "infer-batch-timeout-us", 200,
      "shared inference: close a non-full batch after waiting this long");
  auto infer_runners = flags.define_int(
      "infer-runners", 1, "shared inference: batcher runner threads");
  auto json_out = flags.define_string(
      "json", "", "write the --infer-mode=compare result as JSON here");
  auto two_tenant = flags.define_bool(
      "two-tenant", false,
      "fairness scenario: two weighted tenants with skewed arrivals");
  auto tenant_weights = flags.define_string(
      "tenant-weights", "3,1", "DRR weights for tenants a,b (--two-tenant)");
  auto skew = flags.define_double(
      "skew", 0.35,
      "tenant a's share of ARRIVALS (--two-tenant); the rest goes to b");
  bench::ObsFlags obs_flags(flags);
  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 flags.usage("bench_service_load").c_str());
    return 2;
  }
  obs_flags.install();

  const bool compare = *infer_mode_flag == "compare";
  if (!compare && *infer_mode_flag != "private" &&
      *infer_mode_flag != "shared") {
    std::fprintf(stderr, "--infer-mode must be private, shared or compare\n");
    return 2;
  }
  if (*guide != "drl" && *guide != "none") {
    std::fprintf(stderr, "--guide must be drl or none\n");
    return 2;
  }
  if ((compare || *infer_mode_flag == "shared") && *guide == "none") {
    std::fprintf(stderr, "--infer-mode=%s needs --guide=drl (there is no "
                         "network to batch without a guide)\n",
                 infer_mode_flag->c_str());
    return 2;
  }
  if (compare && *two_tenant) {
    std::fprintf(stderr, "--infer-mode=compare and --two-tenant are separate "
                         "scenarios; pick one\n");
    return 2;
  }

  // Workload: the paper's random layered DAGs, pre-rendered to protocol
  // text once so the submit path (parse + validate + search) is measured,
  // not the generator.
  const std::vector<Dag> pool = bench::simulation_workload(
      static_cast<std::size_t>(*pool_size), static_cast<std::size_t>(*tasks),
      static_cast<std::uint64_t>(*seed));
  std::vector<std::string> pool_text;
  pool_text.reserve(pool.size());
  for (const Dag& dag : pool) pool_text.push_back(dag_to_text(dag));

  ServiceOptions options;
  options.workers = static_cast<int>(*workers);
  options.limits.queue_capacity = static_cast<std::size_t>(*queue_cap);
  options.default_budget_ms = *budget_ms;
  options.search_iterations = *iterations;
  options.min_iterations = *min_iterations;
  options.seed = static_cast<std::uint64_t>(*seed);
  if (*guide == "drl") {
    // Untrained paper-topology network (same construction as bench_micro):
    // inference cost and batch shapes match the trained policy exactly —
    // weights change WHAT is computed, not how much.
    Rng policy_rng(6);
    options.policy = std::make_shared<const Policy>(
        Policy::make(FeaturizerOptions{}, options.capacity.dims(),
                     policy_rng));
  }
  options.infer.batch_max = static_cast<std::size_t>(
      std::max<std::int64_t>(*infer_batch_max, 1));
  options.infer.batch_timeout_us = *infer_batch_timeout_us;
  options.infer.runners = static_cast<int>(*infer_runners);
  if (*infer_mode_flag == "shared") options.infer_mode = InferMode::kShared;

  double weight_a = 3.0;
  double weight_b = 1.0;
  if (*two_tenant) {
    if (!parse_weight_pair(*tenant_weights, &weight_a, &weight_b)) {
      std::fprintf(stderr, "bad --tenant-weights '%s' (want e.g. 3,1)\n",
                   tenant_weights->c_str());
      return 2;
    }
    if (*skew <= 0.0 || *skew >= 1.0) {
      std::fprintf(stderr, "--skew must be in (0,1)\n");
      return 2;
    }
    // Reserve half the queue per tenant so the chattier tenant cannot crowd
    // the other out of the shared queue at admission; DRR then decides who
    // gets served, and excess arrivals shed with quota_exceeded.
    TenantLimits limits;
    limits.max_queued =
        std::max<std::size_t>(1, static_cast<std::size_t>(*queue_cap) / 2);
    limits.weight = weight_a;
    options.tenant_overrides["a"] = limits;
    limits.weight = weight_b;
    options.tenant_overrides["b"] = limits;
  }

  // Calibrate on a throwaway PRIVATE-mode service so the compare mode's two
  // passes (and any explicit mode) share one arrival rate: serve a few
  // requests synchronously to estimate the service rate, then drive
  // arrivals at rate x multiplier.
  double arrival_rate = *rate;
  if (arrival_rate <= 0.0) {
    ServiceOptions cal_options = options;
    cal_options.infer_mode = InferMode::kPrivate;
    SchedulerService calibrator(cal_options);
    calibrator.start();
    const auto t0 = std::chrono::steady_clock::now();
    const int calibration_jobs = 10;
    std::atomic<int> done{0};
    for (int i = 0; i < calibration_jobs; ++i) {
      SubmitRequest request;
      request.id = "cal" + std::to_string(i);
      request.dag_text = pool_text[static_cast<std::size_t>(i) %
                                   pool_text.size()];
      request.budget_ms = *budget_ms;
      calibrator.submit(request, [&done](bool, const SubmitResult&,
                                         const Rejection&) { ++done; });
    }
    while (done.load() < calibration_jobs) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const double elapsed = bench::seconds_since(t0);
    calibrator.shutdown();
    arrival_rate = elapsed > 0 ? calibration_jobs / elapsed : 100.0;
    std::printf("calibrated service rate: %.1f jobs/s\n", arrival_rate);
  }
  if (*two_tenant && *jobs == 200 && *duration_s == 0) {
    // Share measurement needs the startup/drain transients amortized away;
    // the stock 200-job run is over in well under a second.
    *jobs = 2000;
  }
  double multiplier = *rate_multiplier;
  if (*two_tenant && multiplier <= 1.0) {
    // Fair shares are only defined under contention: BOTH tenants must
    // offer more than their weight share of capacity.  4x total with a
    // 0.35/0.65 split gives a 1.4x and b 2.6x — both saturating.
    multiplier = 4.0;
  }
  arrival_rate *= multiplier;
  std::printf("arrival rate: %.1f jobs/s (x%.2g)\n", arrival_rate, multiplier);
  if (*two_tenant) {
    std::printf("two-tenant: weights a=%.2f b=%.2f, arrival split "
                "a=%.0f%% b=%.0f%%\n",
                weight_a, weight_b, 100.0 * *skew, 100.0 * (1.0 - *skew));
  }

  LoadParams params;
  params.options = options;
  params.pool_text = &pool_text;
  params.jobs = *jobs;
  params.duration_s = *duration_s;
  params.arrival_rate = arrival_rate;
  params.budget_ms = *budget_ms;
  params.seed = static_cast<std::uint64_t>(*seed);
  params.two_tenant = *two_tenant;
  params.skew = *skew;

  if (compare) {
    std::printf("\n--- private (per-worker network copies) ---\n");
    params.options.infer_mode = InferMode::kPrivate;
    const LoadOutcome priv = run_load(params);
    print_outcome(priv);

    std::printf("\n--- shared (cross-request batched inference) ---\n");
    params.options.infer_mode = InferMode::kShared;
    const LoadOutcome shared = run_load(params);
    print_outcome(shared);

    const double speedup = priv.jobs_per_sec() > 0.0
                               ? shared.jobs_per_sec() / priv.jobs_per_sec()
                               : 0.0;
    const double occupancy_gain =
        priv.mean_batch_rows() > 0.0
            ? shared.mean_batch_rows() / priv.mean_batch_rows()
            : 0.0;
    std::printf("\nshared vs private: %.2fx jobs/sec, %.2fx mean batch "
                "occupancy (%.2f -> %.2f rows/forward), mean makespan "
                "%.2f vs %.2f\n",
                speedup, occupancy_gain, priv.mean_batch_rows(),
                shared.mean_batch_rows(), shared.mean_makespan(),
                priv.mean_makespan());
    if (!json_out->empty()) {
      write_compare_json(*json_out, arrival_rate, static_cast<int>(*workers),
                         priv, shared);
    }
    if (obs_flags.enabled()) {
      obs::RunReport report("bench_service_load");
      report.set("mode", "compare");
      report.set("jobs_per_sec_private", priv.jobs_per_sec());
      report.set("jobs_per_sec_shared", shared.jobs_per_sec());
      report.set("jobs_per_sec_speedup", speedup);
      report.set("batch_occupancy_gain", occupancy_gain);
      obs_flags.finish(report);
    }
    return (priv.lost_requests || shared.lost_requests) ? 1 : 0;
  }

  const LoadOutcome out = run_load(params);
  std::printf("\n");
  print_outcome(out);
  if (out.lost_requests) return 1;

  if (*two_tenant) {
    std::printf("\nper-tenant (weights a=%.2f b=%.2f):\n", weight_a, weight_b);
    for (const std::string name : {"a", "b"}) {
      const auto track_it = out.tenant_track.find(name);
      const TenantTrack track =
          track_it != out.tenant_track.end() ? track_it->second : TenantTrack{};
      TenantCounters slice;
      const auto it = out.c.tenants.find(name);
      if (it != out.c.tenants.end()) slice = it->second;
      std::printf("  %s: submitted %lld placed %lld shed %lld dequeued %lld",
                  name.c_str(), static_cast<long long>(slice.submitted),
                  static_cast<long long>(slice.placed),
                  static_cast<long long>(slice.shed),
                  static_cast<long long>(track.dequeues));
      if (!track.latency_ms.empty()) {
        std::printf("  latency p50 %.2f p99 %.2f ms",
                    percentile(track.latency_ms, 50),
                    percentile(track.latency_ms, 99));
      }
      std::printf("  max-starvation %.1f ms\n", track.max_gap_ms);
    }

    const auto dequeues = [&](const char* name) {
      const auto it = out.tenant_track.find(name);
      return it != out.tenant_track.end()
                 ? static_cast<double>(it->second.dequeues)
                 : 0.0;
    };
    const double dequeues_a = dequeues("a");
    const double dequeues_b = dequeues("b");
    if (dequeues_a + dequeues_b <= 0.0) {
      std::fprintf(stderr, "ERROR: no two-tenant dequeues recorded\n");
      return 1;
    }
    const double measured = dequeues_a / (dequeues_a + dequeues_b);
    const double expected = weight_a / (weight_a + weight_b);
    std::printf("service share a: measured %.3f, weight share %.3f "
                "(tolerance 0.10)\n",
                measured, expected);
    if (std::fabs(measured - expected) > 0.10) {
      std::fprintf(stderr,
                   "ERROR: measured share %.3f deviates more than 0.10 "
                   "from weight share %.3f\n",
                   measured, expected);
      return 1;
    }
    std::printf("fairness check passed\n");
  }

  if (obs_flags.enabled()) {
    const ServiceCounters& c = out.c;
    const std::int64_t shed_total =
        c.rejected_queue_full + c.rejected_quota_exceeded;
    obs::RunReport report("bench_service_load");
    report.set("submitted", c.submitted);
    report.set("placed", c.placed);
    report.set("shed", shed_total);
    report.set("shed_rate", c.submitted > 0 ? static_cast<double>(shed_total) /
                                                  c.submitted
                                            : 0.0);
    report.set("expired", c.rejected_deadline_expired);
    report.set("cancelled", c.cancelled);
    report.set("degraded_reduced", c.degraded_reduced);
    report.set("degraded_heuristic", c.degraded_heuristic);
    report.set("search_degradations", c.search_degradations);
    report.set("jobs_per_sec", out.jobs_per_sec());
    report.set("infer_mode", out.shared ? "shared" : "private");
    report.set("forwards_per_sec", out.forwards_per_sec());
    report.set("batch_rows_mean", out.mean_batch_rows());
    report.set("batch_rows_p50",
               infer::hist_percentile(out.physical_hist(), 50.0));
    report.set("batch_rows_p99",
               infer::hist_percentile(out.physical_hist(), 99.0));
    if (!out.latency_ms.empty()) {
      report.set("latency_p50_ms", percentile(out.latency_ms, 50));
      report.set("latency_p99_ms", percentile(out.latency_ms, 99));
    }
    obs_flags.finish(report);
  }
  return 0;
}
