// Load/robustness bench for the scheduling service (DESIGN.md §12): drives
// an in-process SchedulerService with seeded Poisson arrivals and reports
// throughput, latency percentiles, the shed rate, and the degradation-ladder
// counts.  The overload soak criterion — sustained 2x arrival rate, bounded
// queue, zero crashes, every request answered — runs as
//
//   ./bench_service_load --rate-multiplier=2 --duration-s=60
//
// Defaults are scaled to finish in seconds; --duration-s stretches the run.
// Requests are generated open-loop (arrivals do not wait for responses),
// which is what makes overload real: when the service falls behind, the
// admission queue fills and try_push sheds.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <random>
#include <thread>
#include <vector>

#include "dag/io.h"
#include "support.h"
#include "svc/service.h"

using namespace spear;
using namespace spear::svc;

int main(int argc, char** argv) {
  Flags flags;
  auto jobs = flags.define_int("jobs", 200, "total requests to submit");
  auto duration_s = flags.define_int(
      "duration-s", 0,
      "run for this many seconds instead of a fixed --jobs count");
  auto rate = flags.define_double(
      "rate", 0.0,
      "arrival rate in jobs/sec; 0 = calibrate to service capacity");
  auto rate_multiplier = flags.define_double(
      "rate-multiplier", 1.0,
      "scale the (calibrated or explicit) arrival rate; 2 = overload soak");
  auto workers = flags.define_int("workers", 2, "service workers");
  auto queue_cap = flags.define_int("queue-cap", 32, "admission queue cap");
  auto budget_ms =
      flags.define_int("budget-ms", 50, "per-request deadline budget");
  auto iterations =
      flags.define_int("iterations", 200, "full search iteration budget");
  auto min_iterations =
      flags.define_int("min-iterations", 50, "minimum iteration budget");
  auto tasks = flags.define_int("tasks", 12, "tasks per generated DAG");
  auto pool_size =
      flags.define_int("dag-pool", 24, "distinct DAGs cycled through");
  auto seed = flags.define_int("seed", 42, "RNG seed (DAGs and arrivals)");
  bench::ObsFlags obs_flags(flags);
  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 flags.usage("bench_service_load").c_str());
    return 2;
  }
  obs_flags.install();

  // Workload: the paper's random layered DAGs, pre-rendered to protocol
  // text once so the submit path (parse + validate + search) is measured,
  // not the generator.
  const std::vector<Dag> pool = bench::simulation_workload(
      static_cast<std::size_t>(*pool_size), static_cast<std::size_t>(*tasks),
      static_cast<std::uint64_t>(*seed));
  std::vector<std::string> pool_text;
  pool_text.reserve(pool.size());
  for (const Dag& dag : pool) pool_text.push_back(dag_to_text(dag));

  ServiceOptions options;
  options.workers = static_cast<int>(*workers);
  options.limits.queue_capacity = static_cast<std::size_t>(*queue_cap);
  options.default_budget_ms = *budget_ms;
  options.search_iterations = *iterations;
  options.min_iterations = *min_iterations;
  options.seed = static_cast<std::uint64_t>(*seed);
  SchedulerService service(options);
  service.start();

  // Calibrate: serve a few requests synchronously to estimate the service
  // rate, then drive arrivals at rate x multiplier.
  double arrival_rate = *rate;
  if (arrival_rate <= 0.0) {
    const auto t0 = std::chrono::steady_clock::now();
    const int calibration_jobs = 10;
    std::atomic<int> done{0};
    for (int i = 0; i < calibration_jobs; ++i) {
      SubmitRequest request;
      request.id = "cal" + std::to_string(i);
      request.dag_text = pool_text[i % pool_text.size()];
      request.budget_ms = *budget_ms;
      service.submit(request, [&done](bool, const SubmitResult&,
                                      const Rejection&) { ++done; });
    }
    while (done.load() < calibration_jobs) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const double elapsed = bench::seconds_since(t0);
    arrival_rate = elapsed > 0 ? calibration_jobs / elapsed : 100.0;
    std::printf("calibrated service rate: %.1f jobs/s\n", arrival_rate);
  }
  arrival_rate *= *rate_multiplier;
  std::printf("arrival rate: %.1f jobs/s (x%.2g)\n", arrival_rate,
              *rate_multiplier);

  // Open-loop Poisson arrivals: exponential inter-arrival gaps, submissions
  // never blocked on completions.  Latency samples cover ANSWERED requests
  // (placed or structurally rejected); shed/expired are counted separately.
  std::mt19937_64 rng(static_cast<std::uint64_t>(*seed) ^ 0x9e3779b9u);
  std::exponential_distribution<double> gap_s(arrival_rate);

  std::mutex latency_mutex;
  std::vector<double> latency_ms;
  std::vector<double> queue_ms_samples;
  std::atomic<std::int64_t> answered{0};

  const auto bench_start = std::chrono::steady_clock::now();
  const double horizon_s = *duration_s > 0 ? static_cast<double>(*duration_s)
                                           : 1e18;
  std::int64_t submitted = 0;
  auto next_arrival = bench_start;
  while (true) {
    if (*duration_s > 0) {
      if (bench::seconds_since(bench_start) >= horizon_s) break;
    } else if (submitted >= *jobs) {
      break;
    }
    next_arrival += std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(gap_s(rng)));
    std::this_thread::sleep_until(next_arrival);

    SubmitRequest request;
    request.id = "j" + std::to_string(submitted);
    request.dag_text = pool_text[static_cast<std::size_t>(submitted) %
                                 pool_text.size()];
    request.budget_ms = *budget_ms;
    const auto sent = std::chrono::steady_clock::now();
    service.submit(request, [&, sent](bool ok, const SubmitResult& result,
                                      const Rejection&) {
      const double total_ms =
          std::chrono::duration<double, std::milli>(
              std::chrono::steady_clock::now() - sent)
              .count();
      ++answered;
      if (ok) {
        std::lock_guard<std::mutex> lock(latency_mutex);
        latency_ms.push_back(total_ms);
        queue_ms_samples.push_back(result.queue_ms);
      }
    });
    ++submitted;
  }
  service.shutdown();  // drain: every admitted request gets its answer
  const double elapsed_s = bench::seconds_since(bench_start);

  const ServiceCounters c = service.counters();
  const double shed_rate =
      c.submitted > 0
          ? static_cast<double>(c.rejected_queue_full) / c.submitted
          : 0.0;
  std::printf("\nsubmitted %lld in %.2fs (%.1f jobs/s offered)\n",
              static_cast<long long>(c.submitted), elapsed_s,
              c.submitted / elapsed_s);
  std::printf("placed %lld (%.1f jobs/s served), answered %lld\n",
              static_cast<long long>(c.placed), c.placed / elapsed_s,
              static_cast<long long>(answered.load()));
  std::printf("shed %lld (%.1f%%), expired-in-queue %lld, shutdown %lld\n",
              static_cast<long long>(c.rejected_queue_full),
              100.0 * shed_rate,
              static_cast<long long>(c.rejected_deadline_expired),
              static_cast<long long>(c.rejected_shutting_down));
  std::printf("degraded: reduced %lld, heuristic %lld, "
              "search fallbacks %lld, deadline cutoffs %lld\n",
              static_cast<long long>(c.degraded_reduced),
              static_cast<long long>(c.degraded_heuristic),
              static_cast<long long>(c.search_degradations),
              static_cast<long long>(c.search_deadline_cutoffs));
  if (!latency_ms.empty()) {
    std::printf("latency ms: p50 %.2f  p99 %.2f  (queue p50 %.2f p99 %.2f)\n",
                percentile(latency_ms, 50), percentile(latency_ms, 99),
                percentile(queue_ms_samples, 50),
                percentile(queue_ms_samples, 99));
  }

  // Invariant: nothing vanished — every submission was answered exactly
  // once (placed or structurally rejected).
  const std::int64_t accounted = c.placed + c.rejected_total();
  if (accounted != c.submitted || answered.load() != submitted) {
    std::fprintf(stderr,
                 "ERROR: %lld submitted but %lld accounted / %lld answered\n",
                 static_cast<long long>(c.submitted),
                 static_cast<long long>(accounted),
                 static_cast<long long>(answered.load()));
    return 1;
  }
  std::printf("all %lld requests answered (zero lost)\n",
              static_cast<long long>(c.submitted));

  if (obs_flags.enabled()) {
    obs::RunReport report("bench_service_load");
    report.set("submitted", c.submitted);
    report.set("placed", c.placed);
    report.set("shed", c.rejected_queue_full);
    report.set("shed_rate", shed_rate);
    report.set("expired", c.rejected_deadline_expired);
    report.set("degraded_reduced", c.degraded_reduced);
    report.set("degraded_heuristic", c.degraded_heuristic);
    report.set("search_degradations", c.search_degradations);
    report.set("jobs_per_sec", c.placed / elapsed_s);
    if (!latency_ms.empty()) {
      report.set("latency_p50_ms", percentile(latency_ms, 50));
      report.set("latency_p99_ms", percentile(latency_ms, 99));
    }
    obs_flags.finish(report);
  }
  return 0;
}
