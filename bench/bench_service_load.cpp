// Load/robustness bench for the scheduling service (DESIGN.md §12): drives
// an in-process SchedulerService with seeded Poisson arrivals and reports
// throughput, latency percentiles, the shed rate, and the degradation-ladder
// counts.  The overload soak criterion — sustained 2x arrival rate, bounded
// queue, zero crashes, every request answered — runs as
//
//   ./bench_service_load --rate-multiplier=2 --duration-s=60
//
// Defaults are scaled to finish in seconds; --duration-s stretches the run.
// Requests are generated open-loop (arrivals do not wait for responses),
// which is what makes overload real: when the service falls behind, the
// admission queue fills and try_push sheds.
//
// --two-tenant switches to the fairness scenario (DESIGN.md §13): two
// tenants with configured DRR weights (--tenant-weights=3,1) and SKEWED
// arrivals — the low-weight tenant submits most of the traffic (--skew is
// tenant a's arrival share) — both saturating, with per-tenant queue quotas
// so neither can crowd the other out of the shared queue at admission.
// Reports per-tenant p50/p99 latency, the max starvation gap (longest wall
// time either tenant waited between consecutive placements), and checks the
// measured placement shares land within 10% of the configured weight shares
// — exit 1 otherwise.

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "dag/io.h"
#include "support.h"
#include "svc/service.h"

using namespace spear;
using namespace spear::svc;

namespace {

// Client-side per-tenant accounting for the --two-tenant scenario.  A
// "dequeue" is any response proving the scheduler took the tenant's job off
// the queue: placed, or deadline_expired discovered AT dequeue.  Admission
// sheds never reach the queue and do not count.  DRR controls dequeues, so
// the weight-share check is computed over dequeues — robust even when a
// tight --budget-ms expires most of the slow tenant's backlog.
struct TenantTrack {
  std::vector<double> latency_ms;  // placed responses only
  std::int64_t dequeues = 0;
  bool seen = false;
  std::chrono::steady_clock::time_point last{};
  double max_gap_ms = 0.0;  // longest wall gap between consecutive dequeues
};

bool parse_weight_pair(const std::string& text, double* a, double* b) {
  const auto comma = text.find(',');
  if (comma == std::string::npos) return false;
  try {
    std::size_t used = 0;
    *a = std::stod(text.substr(0, comma), &used);
    if (used != comma) return false;
    const std::string rest = text.substr(comma + 1);
    *b = std::stod(rest, &used);
    if (used != rest.size()) return false;
  } catch (const std::exception&) {
    return false;
  }
  return *a > 0.0 && *b > 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  auto jobs = flags.define_int("jobs", 200, "total requests to submit");
  auto duration_s = flags.define_int(
      "duration-s", 0,
      "run for this many seconds instead of a fixed --jobs count");
  auto rate = flags.define_double(
      "rate", 0.0,
      "arrival rate in jobs/sec; 0 = calibrate to service capacity");
  auto rate_multiplier = flags.define_double(
      "rate-multiplier", 1.0,
      "scale the (calibrated or explicit) arrival rate; 2 = overload soak");
  auto workers = flags.define_int("workers", 2, "service workers");
  auto queue_cap = flags.define_int("queue-cap", 32, "admission queue cap");
  auto budget_ms =
      flags.define_int("budget-ms", 50, "per-request deadline budget");
  auto iterations =
      flags.define_int("iterations", 200, "full search iteration budget");
  auto min_iterations =
      flags.define_int("min-iterations", 50, "minimum iteration budget");
  auto tasks = flags.define_int("tasks", 12, "tasks per generated DAG");
  auto pool_size =
      flags.define_int("dag-pool", 24, "distinct DAGs cycled through");
  auto seed = flags.define_int("seed", 42, "RNG seed (DAGs and arrivals)");
  auto two_tenant = flags.define_bool(
      "two-tenant", false,
      "fairness scenario: two weighted tenants with skewed arrivals");
  auto tenant_weights = flags.define_string(
      "tenant-weights", "3,1", "DRR weights for tenants a,b (--two-tenant)");
  auto skew = flags.define_double(
      "skew", 0.35,
      "tenant a's share of ARRIVALS (--two-tenant); the rest goes to b");
  bench::ObsFlags obs_flags(flags);
  try {
    flags.parse(argc, argv);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(),
                 flags.usage("bench_service_load").c_str());
    return 2;
  }
  obs_flags.install();

  // Workload: the paper's random layered DAGs, pre-rendered to protocol
  // text once so the submit path (parse + validate + search) is measured,
  // not the generator.
  const std::vector<Dag> pool = bench::simulation_workload(
      static_cast<std::size_t>(*pool_size), static_cast<std::size_t>(*tasks),
      static_cast<std::uint64_t>(*seed));
  std::vector<std::string> pool_text;
  pool_text.reserve(pool.size());
  for (const Dag& dag : pool) pool_text.push_back(dag_to_text(dag));

  ServiceOptions options;
  options.workers = static_cast<int>(*workers);
  options.limits.queue_capacity = static_cast<std::size_t>(*queue_cap);
  options.default_budget_ms = *budget_ms;
  options.search_iterations = *iterations;
  options.min_iterations = *min_iterations;
  options.seed = static_cast<std::uint64_t>(*seed);

  double weight_a = 3.0;
  double weight_b = 1.0;
  if (*two_tenant) {
    if (!parse_weight_pair(*tenant_weights, &weight_a, &weight_b)) {
      std::fprintf(stderr, "bad --tenant-weights '%s' (want e.g. 3,1)\n",
                   tenant_weights->c_str());
      return 2;
    }
    if (*skew <= 0.0 || *skew >= 1.0) {
      std::fprintf(stderr, "--skew must be in (0,1)\n");
      return 2;
    }
    // Reserve half the queue per tenant so the chattier tenant cannot crowd
    // the other out of the shared queue at admission; DRR then decides who
    // gets served, and excess arrivals shed with quota_exceeded.
    TenantLimits limits;
    limits.max_queued =
        std::max<std::size_t>(1, static_cast<std::size_t>(*queue_cap) / 2);
    limits.weight = weight_a;
    options.tenant_overrides["a"] = limits;
    limits.weight = weight_b;
    options.tenant_overrides["b"] = limits;
  }

  SchedulerService service(options);
  service.start();

  // Calibrate: serve a few requests synchronously to estimate the service
  // rate, then drive arrivals at rate x multiplier.
  double arrival_rate = *rate;
  if (arrival_rate <= 0.0) {
    const auto t0 = std::chrono::steady_clock::now();
    const int calibration_jobs = 10;
    std::atomic<int> done{0};
    for (int i = 0; i < calibration_jobs; ++i) {
      SubmitRequest request;
      request.id = "cal" + std::to_string(i);
      request.dag_text = pool_text[i % pool_text.size()];
      request.budget_ms = *budget_ms;
      service.submit(request, [&done](bool, const SubmitResult&,
                                      const Rejection&) { ++done; });
    }
    while (done.load() < calibration_jobs) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    const double elapsed = bench::seconds_since(t0);
    arrival_rate = elapsed > 0 ? calibration_jobs / elapsed : 100.0;
    std::printf("calibrated service rate: %.1f jobs/s\n", arrival_rate);
  }
  if (*two_tenant && *jobs == 200 && *duration_s == 0) {
    // Share measurement needs the startup/drain transients amortized away;
    // the stock 200-job run is over in well under a second.
    *jobs = 2000;
  }
  double multiplier = *rate_multiplier;
  if (*two_tenant && multiplier <= 1.0) {
    // Fair shares are only defined under contention: BOTH tenants must
    // offer more than their weight share of capacity.  4x total with a
    // 0.35/0.65 split gives a 1.4x and b 2.6x — both saturating.
    multiplier = 4.0;
  }
  arrival_rate *= multiplier;
  std::printf("arrival rate: %.1f jobs/s (x%.2g)\n", arrival_rate, multiplier);
  if (*two_tenant) {
    std::printf("two-tenant: weights a=%.2f b=%.2f, arrival split "
                "a=%.0f%% b=%.0f%%\n",
                weight_a, weight_b, 100.0 * *skew, 100.0 * (1.0 - *skew));
  }

  // Open-loop Poisson arrivals: exponential inter-arrival gaps, submissions
  // never blocked on completions.  Latency samples cover ANSWERED requests
  // (placed or structurally rejected); shed/expired are counted separately.
  std::mt19937_64 rng(static_cast<std::uint64_t>(*seed) ^ 0x9e3779b9u);
  std::exponential_distribution<double> gap_s(arrival_rate);

  std::mutex latency_mutex;
  std::vector<double> latency_ms;
  std::vector<double> queue_ms_samples;
  std::map<std::string, TenantTrack> tenant_track;  // --two-tenant only
  std::atomic<std::int64_t> answered{0};
  std::bernoulli_distribution pick_a(*skew);

  const auto bench_start = std::chrono::steady_clock::now();
  const double horizon_s = *duration_s > 0 ? static_cast<double>(*duration_s)
                                           : 1e18;
  std::int64_t submitted = 0;
  auto next_arrival = bench_start;
  while (true) {
    if (*duration_s > 0) {
      if (bench::seconds_since(bench_start) >= horizon_s) break;
    } else if (submitted >= *jobs) {
      break;
    }
    next_arrival += std::chrono::duration_cast<
        std::chrono::steady_clock::duration>(
        std::chrono::duration<double>(gap_s(rng)));
    std::this_thread::sleep_until(next_arrival);

    SubmitRequest request;
    request.id = "j" + std::to_string(submitted);
    request.dag_text = pool_text[static_cast<std::size_t>(submitted) %
                                 pool_text.size()];
    request.budget_ms = *budget_ms;
    std::string tenant;
    if (*two_tenant) {
      tenant = pick_a(rng) ? "a" : "b";
      request.tenant = tenant;
    }
    const auto sent = std::chrono::steady_clock::now();
    service.submit(request, [&, sent, tenant](bool ok,
                                              const SubmitResult& result,
                                              const Rejection& rejection) {
      const auto now = std::chrono::steady_clock::now();
      const double total_ms =
          std::chrono::duration<double, std::milli>(now - sent).count();
      ++answered;
      const bool dequeued =
          ok || rejection.code == ErrorCode::kDeadlineExpired;
      if (ok || (!tenant.empty() && dequeued)) {
        std::lock_guard<std::mutex> lock(latency_mutex);
        if (ok) {
          latency_ms.push_back(total_ms);
          queue_ms_samples.push_back(result.queue_ms);
        }
        if (!tenant.empty() && dequeued) {
          TenantTrack& track = tenant_track[tenant];
          ++track.dequeues;
          if (track.seen) {
            const double gap_ms =
                std::chrono::duration<double, std::milli>(now - track.last)
                    .count();
            if (gap_ms > track.max_gap_ms) track.max_gap_ms = gap_ms;
          }
          track.seen = true;
          track.last = now;
          if (ok) track.latency_ms.push_back(total_ms);
        }
      }
    });
    ++submitted;
  }
  service.shutdown();  // drain: every admitted request gets its answer
  const double elapsed_s = bench::seconds_since(bench_start);

  const ServiceCounters c = service.counters();
  const std::int64_t shed_total =
      c.rejected_queue_full + c.rejected_quota_exceeded;
  const double shed_rate =
      c.submitted > 0 ? static_cast<double>(shed_total) / c.submitted : 0.0;
  std::printf("\nsubmitted %lld in %.2fs (%.1f jobs/s offered)\n",
              static_cast<long long>(c.submitted), elapsed_s,
              c.submitted / elapsed_s);
  std::printf("placed %lld (%.1f jobs/s served), answered %lld\n",
              static_cast<long long>(c.placed), c.placed / elapsed_s,
              static_cast<long long>(answered.load()));
  std::printf("shed %lld (%.1f%%: queue_full %lld + quota %lld), "
              "expired-in-queue %lld, shutdown %lld\n",
              static_cast<long long>(shed_total), 100.0 * shed_rate,
              static_cast<long long>(c.rejected_queue_full),
              static_cast<long long>(c.rejected_quota_exceeded),
              static_cast<long long>(c.rejected_deadline_expired),
              static_cast<long long>(c.rejected_shutting_down));
  std::printf("degraded: reduced %lld, heuristic %lld, "
              "search fallbacks %lld, deadline cutoffs %lld\n",
              static_cast<long long>(c.degraded_reduced),
              static_cast<long long>(c.degraded_heuristic),
              static_cast<long long>(c.search_degradations),
              static_cast<long long>(c.search_deadline_cutoffs));
  if (!latency_ms.empty()) {
    std::printf("latency ms: p50 %.2f  p99 %.2f  (queue p50 %.2f p99 %.2f)\n",
                percentile(latency_ms, 50), percentile(latency_ms, 99),
                percentile(queue_ms_samples, 50),
                percentile(queue_ms_samples, 99));
  }

  // Invariant: nothing vanished — every submission was answered exactly
  // once (placed, structurally rejected, or cancelled).
  const std::int64_t accounted = c.placed + c.rejected_total() + c.cancelled;
  if (accounted != c.submitted || answered.load() != submitted) {
    std::fprintf(stderr,
                 "ERROR: %lld submitted but %lld accounted / %lld answered\n",
                 static_cast<long long>(c.submitted),
                 static_cast<long long>(accounted),
                 static_cast<long long>(answered.load()));
    return 1;
  }
  std::printf("all %lld requests answered (zero lost)\n",
              static_cast<long long>(c.submitted));

  if (*two_tenant) {
    std::lock_guard<std::mutex> lock(latency_mutex);
    std::printf("\nper-tenant (weights a=%.2f b=%.2f):\n", weight_a, weight_b);
    for (const std::string name : {"a", "b"}) {
      const TenantTrack& track = tenant_track[name];
      TenantCounters slice;
      const auto it = c.tenants.find(name);
      if (it != c.tenants.end()) slice = it->second;
      std::printf("  %s: submitted %lld placed %lld shed %lld dequeued %lld",
                  name.c_str(), static_cast<long long>(slice.submitted),
                  static_cast<long long>(slice.placed),
                  static_cast<long long>(slice.shed),
                  static_cast<long long>(track.dequeues));
      if (!track.latency_ms.empty()) {
        std::printf("  latency p50 %.2f p99 %.2f ms",
                    percentile(track.latency_ms, 50),
                    percentile(track.latency_ms, 99));
      }
      std::printf("  max-starvation %.1f ms\n", track.max_gap_ms);
    }

    const double dequeues_a =
        static_cast<double>(tenant_track["a"].dequeues);
    const double dequeues_b =
        static_cast<double>(tenant_track["b"].dequeues);
    if (dequeues_a + dequeues_b <= 0.0) {
      std::fprintf(stderr, "ERROR: no two-tenant dequeues recorded\n");
      return 1;
    }
    const double measured = dequeues_a / (dequeues_a + dequeues_b);
    const double expected = weight_a / (weight_a + weight_b);
    std::printf("service share a: measured %.3f, weight share %.3f "
                "(tolerance 0.10)\n",
                measured, expected);
    if (std::fabs(measured - expected) > 0.10) {
      std::fprintf(stderr,
                   "ERROR: measured share %.3f deviates more than 0.10 "
                   "from weight share %.3f\n",
                   measured, expected);
      return 1;
    }
    std::printf("fairness check passed\n");
  }

  if (obs_flags.enabled()) {
    obs::RunReport report("bench_service_load");
    report.set("submitted", c.submitted);
    report.set("placed", c.placed);
    report.set("shed", shed_total);
    report.set("shed_rate", shed_rate);
    report.set("expired", c.rejected_deadline_expired);
    report.set("cancelled", c.cancelled);
    report.set("degraded_reduced", c.degraded_reduced);
    report.set("degraded_heuristic", c.degraded_heuristic);
    report.set("search_degradations", c.search_degradations);
    report.set("jobs_per_sec", c.placed / elapsed_s);
    if (!latency_ms.empty()) {
      report.set("latency_p50_ms", percentile(latency_ms, 50));
      report.set("latency_p99_ms", percentile(latency_ms, 99));
    }
    obs_flags.finish(report);
  }
  return 0;
}
