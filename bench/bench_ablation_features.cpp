// Ablation: the graph-derived policy features of §III-D (b-level,
// #children, per-resource b-load).  Two policies are trained identically —
// one with graph features, one without — and compared as standalone
// schedulers (greedy rollouts) and as Spear guidance.  The paper reports
// the graph features are what lift the DRL model past Tetris/SJF.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "rl/imitation.h"
#include "rl/reinforce.h"
#include "sched/sjf.h"
#include "sched/tetris.h"
#include "support.h"

namespace {

// Train one policy variant through the §IV pipeline.
spear::Policy train_variant(bool graph_features, std::uint64_t seed,
                            const std::vector<spear::Dag>& dags,
                            const spear::ResourceVector& capacity,
                            std::size_t rl_epochs) {
  using namespace spear;
  Rng rng(seed);
  FeaturizerOptions featurizer;
  featurizer.graph_features = graph_features;
  Policy policy = Policy::make(featurizer, capacity.dims(), rng);
  ImitationOptions imitation;
  imitation.epochs = 8;
  pretrain_on_cp(policy, dags, capacity, imitation, rng);
  ReinforceOptions rl;
  rl.epochs = rl_epochs;
  rl.rollouts_per_example = 4;
  train_reinforce(policy, dags, capacity, rl, rng);
  return policy;
}

// Mean makespan of greedy policy rollouts over the evaluation DAGs.
double mean_rollout_makespan(const spear::Policy& policy,
                             const std::vector<spear::Dag>& dags,
                             const spear::ResourceVector& capacity) {
  using namespace spear;
  std::vector<double> makespans;
  EnvOptions env_options;
  env_options.max_ready = policy.featurizer().options().max_ready;
  for (const auto& dag : dags) {
    SchedulingEnv env(std::make_shared<Dag>(dag), capacity, env_options);
    Rng rng(1);
    while (!env.done()) {
      const int action = policy.to_env_action(policy.greedy_output(env));
      if (action == SchedulingEnv::kProcessAction) {
        env.process_to_next_finish();
      } else {
        env.step(action);
      }
    }
    makespans.push_back(static_cast<double>(env.makespan()));
  }
  return mean(makespans);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace spear;
  using namespace spear::bench;

  Flags flags;
  const auto train_jobs = flags.define_int("train-jobs", 8, "training DAGs");
  const auto eval_jobs = flags.define_int("eval-jobs", 8, "evaluation DAGs");
  const auto tasks = flags.define_int("tasks", 15, "tasks per DAG");
  const auto rl_epochs = flags.define_int("rl-epochs", 15, "REINFORCE epochs");
  const auto seed = flags.define_int("seed", 15, "seed");
  const auto csv_path =
      flags.define_string("csv", "ablation_features.csv", "CSV output");
  flags.parse(argc, argv);

  const ResourceVector capacity{1.0, 1.0};
  const auto train_dags = simulation_workload(
      static_cast<std::size_t>(*train_jobs), static_cast<std::size_t>(*tasks),
      static_cast<std::uint64_t>(*seed));
  const auto eval_dags = simulation_workload(
      static_cast<std::size_t>(*eval_jobs), static_cast<std::size_t>(*tasks),
      static_cast<std::uint64_t>(*seed) + 1000);

  std::printf("training policy WITH graph features...\n");
  const Policy with_features =
      train_variant(true, static_cast<std::uint64_t>(*seed), train_dags,
                    capacity, static_cast<std::size_t>(*rl_epochs));
  std::printf("training policy WITHOUT graph features...\n");
  const Policy without_features =
      train_variant(false, static_cast<std::uint64_t>(*seed), train_dags,
                    capacity, static_cast<std::size_t>(*rl_epochs));

  const double makespan_with =
      mean_rollout_makespan(with_features, eval_dags, capacity);
  const double makespan_without =
      mean_rollout_makespan(without_features, eval_dags, capacity);

  // Heuristic references on the same evaluation set.
  auto tetris = make_tetris_scheduler();
  auto sjf = make_sjf_scheduler();
  std::vector<double> tetris_makespans, sjf_makespans;
  for (const auto& dag : eval_dags) {
    tetris_makespans.push_back(
        static_cast<double>(validated_makespan(*tetris, dag, capacity)));
    sjf_makespans.push_back(
        static_cast<double>(validated_makespan(*sjf, dag, capacity)));
  }

  Table table({"policy / heuristic", "mean makespan (greedy rollout)"});
  table.add("DRL with graph features", makespan_with);
  table.add("DRL without graph features", makespan_without);
  table.add("Tetris", mean(tetris_makespans));
  table.add("SJF", mean(sjf_makespans));
  std::printf("\nGraph-feature ablation (§III-D: the graph features should "
              "help; paper reports they are what surpass Tetris/SJF):\n");
  table.print();

  CsvWriter csv(*csv_path);
  csv.write("variant", "mean_makespan");
  csv.write("with_graph_features", makespan_with);
  csv.write("without_graph_features", makespan_without);
  csv.write("tetris", mean(tetris_makespans));
  csv.write("sjf", mean(sjf_makespans));
  return 0;
}
