// Google-benchmark micro-benchmarks for the hot paths: simulator stepping,
// feature extraction, NN forward/backward, MCTS decisions (serial and
// root-parallel), Matrix::matmul, Graphene's virtual packing, and DAG
// generation.  These guard the throughput assumptions behind the
// bench-harness defaults.
//
// Before the google benchmarks run, main() performs an MCTS thread sweep on
// the Table-1 workload (50-task DAG, budget 500) at 1/2/4/8 workers and
// writes bench_micro_mcts_threads.csv — decisions/sec and iterations/sec
// per thread count, same CSV style as the figure benches — plus the
// root-vs-leaf search-mode sweep (bench_micro_leaf_parallel.json, committed
// as BENCH_mcts_leaf_parallel.json).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/table.h"
#include "dag/generator.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "env/featurizer.h"
#include "mcts/mcts.h"
#include "nn/kernels.h"
#include "nn/matrix.h"
#include "nn/mlp.h"
#include "rl/policy.h"
#include "sched/graphene.h"
#include "sched/tetris.h"

namespace spear {
namespace {

const ResourceVector kCapacity{1.0, 1.0};

Dag benchmark_dag(std::size_t tasks, std::uint64_t seed = 1) {
  DagGeneratorOptions options;
  options.num_tasks = tasks;
  Rng rng(seed);
  return generate_random_dag(options, rng);
}

void BM_GenerateDag(benchmark::State& state) {
  DagGeneratorOptions options;
  options.num_tasks = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_random_dag(options, rng));
  }
}
BENCHMARK(BM_GenerateDag)->Arg(25)->Arg(100);

void BM_DagFeatures(benchmark::State& state) {
  const Dag dag = benchmark_dag(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DagFeatures(dag));
  }
}
BENCHMARK(BM_DagFeatures)->Arg(25)->Arg(100);

void BM_RandomEpisode(benchmark::State& state) {
  const auto dag = std::make_shared<Dag>(
      benchmark_dag(static_cast<std::size_t>(state.range(0))));
  const auto features = std::make_shared<DagFeatures>(*dag);
  EnvOptions options;
  options.max_ready = dag->num_tasks();
  Rng rng(3);
  for (auto _ : state) {
    SchedulingEnv env(dag, kCapacity, options, features);
    while (!env.done()) {
      const auto actions = env.valid_actions();
      const auto pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(actions.size()) - 1));
      if (actions[pick] == SchedulingEnv::kProcessAction) {
        env.process_to_next_finish();
      } else {
        env.step(actions[pick]);
      }
    }
    benchmark::DoNotOptimize(env.makespan());
  }
}
BENCHMARK(BM_RandomEpisode)->Arg(25)->Arg(100);

void BM_Featurize(benchmark::State& state) {
  const auto dag = std::make_shared<Dag>(benchmark_dag(50));
  EnvOptions env_options;
  env_options.max_ready = 15;
  SchedulingEnv env(dag, kCapacity, env_options);
  env.step(0);
  Featurizer featurizer;
  std::vector<double> out;
  for (auto _ : state) {
    featurizer.featurize(env, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Featurize);

void BM_FeaturizeInto(benchmark::State& state) {
  // Same workload as BM_Featurize through the span API: features written
  // straight into a preallocated row, no per-call clear-and-size of a
  // vector (the batched fast path's featurization primitive).
  const auto dag = std::make_shared<Dag>(benchmark_dag(50));
  EnvOptions env_options;
  env_options.max_ready = 15;
  SchedulingEnv env(dag, kCapacity, env_options);
  env.step(0);
  Featurizer featurizer;
  std::vector<double> out(featurizer.input_dim(2), 0.0);
  for (auto _ : state) {
    featurizer.featurize_into(env, out.data());
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_FeaturizeInto);

void BM_MlpForward(benchmark::State& state) {
  Rng rng(5);
  Mlp net({163, 256, 32, 32, 16}, rng);  // the paper topology
  Matrix input(static_cast<std::size_t>(state.range(0)), 163, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(input));
  }
}
BENCHMARK(BM_MlpForward)->Arg(1)->Arg(32);

void BM_MlpForwardWs(benchmark::State& state) {
  // The workspace forward: same math as BM_MlpForward (bit-identical
  // logits) with zero steady-state allocation.
  Rng rng(5);
  Mlp net({163, 256, 32, 32, 16}, rng);
  const auto rows = static_cast<std::size_t>(state.range(0));
  Mlp::ForwardWorkspace ws;
  net.begin_forward(ws, rows).fill(0.1);
  for (auto _ : state) {
    net.begin_forward(ws, rows).fill(0.1);
    net.forward_ws(ws);
    benchmark::DoNotOptimize(ws.logits().data().data());
  }
}
BENCHMARK(BM_MlpForwardWs)->Arg(1)->Arg(32);

void BM_MlpBackward(benchmark::State& state) {
  Rng rng(5);
  Mlp net({163, 256, 32, 32, 16}, rng);
  Matrix input(static_cast<std::size_t>(state.range(0)), 163, 0.1);
  const auto cache = net.forward(input);
  Matrix d_logits(input.rows(), 16, 0.01);
  auto grads = net.make_gradients();
  for (auto _ : state) {
    grads.zero();
    net.backward(cache, d_logits, grads);
    benchmark::DoNotOptimize(grads.max_abs());
  }
}
BENCHMARK(BM_MlpBackward)->Arg(1)->Arg(32);

void BM_PolicyActionProbs(benchmark::State& state) {
  Rng rng(6);
  Policy policy = Policy::make(FeaturizerOptions{}, 2, rng);
  const auto dag = std::make_shared<Dag>(benchmark_dag(50));
  EnvOptions env_options;
  env_options.max_ready = 15;
  SchedulingEnv env(dag, kCapacity, env_options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.action_probs(env));
  }
}
BENCHMARK(BM_PolicyActionProbs);

/// Snapshots of up to `max_states` decision states along one episode of
/// `dag`, stepping the first valid action each turn — the state mix a
/// guided MCTS expansion evaluates.
std::vector<SchedulingEnv> episode_states(std::size_t max_states) {
  const auto dag = std::make_shared<Dag>(benchmark_dag(50));
  EnvOptions env_options;
  env_options.max_ready = 15;
  SchedulingEnv env(dag, kCapacity, env_options);
  std::vector<SchedulingEnv> states;
  while (!env.done() && states.size() < max_states) {
    states.push_back(env);
    const auto actions = env.valid_actions();
    if (actions.front() == SchedulingEnv::kProcessAction) {
      env.process_to_next_finish();
    } else {
      env.step(actions.front());
    }
  }
  return states;
}

void BM_PolicyActionProbsBatch(benchmark::State& state) {
  // One batched forward over N states vs. N BM_PolicyActionProbs calls:
  // the MCTS expansion fast path.  masks/probs are reused across
  // iterations, so the steady state allocates nothing.
  Rng rng(6);
  Policy policy = Policy::make(FeaturizerOptions{}, 2, rng);
  const auto states = episode_states(static_cast<std::size_t>(state.range(0)));
  std::vector<const SchedulingEnv*> ptrs;
  for (const auto& s : states) ptrs.push_back(&s);
  std::vector<std::vector<bool>> masks;
  std::vector<std::vector<double>> probs;
  for (auto _ : state) {
    policy.action_probs_batch(ptrs.data(), ptrs.size(), masks, probs);
    benchmark::DoNotOptimize(probs.data());
  }
  state.counters["states/s"] = benchmark::Counter(
      static_cast<double>(ptrs.size()),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_PolicyActionProbsBatch)->Arg(8)->Arg(32);

void BM_TetrisSchedule(benchmark::State& state) {
  const Dag dag = benchmark_dag(static_cast<std::size_t>(state.range(0)));
  auto tetris = make_tetris_scheduler();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tetris->schedule(dag, kCapacity));
  }
}
BENCHMARK(BM_TetrisSchedule)->Arg(25)->Arg(100);

void BM_GrapheneSchedule(benchmark::State& state) {
  const Dag dag = benchmark_dag(static_cast<std::size_t>(state.range(0)));
  auto graphene = make_graphene_scheduler();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graphene->schedule(dag, kCapacity));
  }
}
BENCHMARK(BM_GrapheneSchedule)->Arg(25)->Arg(100);

void BM_MctsSchedule25(benchmark::State& state) {
  const Dag dag = benchmark_dag(25);
  MctsOptions options;
  options.initial_budget = state.range(0);
  options.min_budget = std::max<std::int64_t>(state.range(0) / 4, 1);
  for (auto _ : state) {
    MctsScheduler mcts(options);
    benchmark::DoNotOptimize(mcts.schedule(dag, kCapacity));
  }
}
BENCHMARK(BM_MctsSchedule25)->Arg(10)->Arg(50);

void BM_MctsScheduleThreads(benchmark::State& state) {
  // Table-1 workload shape: 50-task DAG, budget 500.  The scheduler (and
  // its thread pool) is reused across iterations, as in a long-lived
  // service.  decisions/s and iters/s counters report search throughput.
  const Dag dag = benchmark_dag(50, 11);
  MctsOptions options;
  options.initial_budget = 500;
  options.min_budget = 5;
  options.num_threads = static_cast<int>(state.range(0));
  MctsScheduler mcts(options);
  std::int64_t decisions = 0;
  std::int64_t iterations = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcts.schedule(dag, kCapacity));
    decisions += mcts.last_stats().decisions;
    iterations += mcts.last_stats().iterations;
  }
  state.counters["decisions/s"] = benchmark::Counter(
      static_cast<double>(decisions), benchmark::Counter::kIsRate);
  state.counters["iters/s"] = benchmark::Counter(
      static_cast<double>(iterations), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MctsScheduleThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a(n, n, 0.5);
  const Matrix b(n, n, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.matmul(b));
  }
  // 2*n^3 flops per product (n^3 multiplies + n^3 adds).
  state.counters["flops"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * static_cast<double>(n) *
          static_cast<double>(n),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

void BM_MatmulSeedReference(benchmark::State& state) {
  // The seed i-k-j matmul (with its a == 0.0 skip branch), kept as the
  // before/after baseline for the tiled kernel that BM_Matmul now hits.
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a(n, n, 0.5);
  const Matrix b(n, n, 0.25);
  Matrix out(n, n, 0.0);
  for (auto _ : state) {
    kernels::reference_matmul_into(a.data().data(), n, n, b.data().data(), n,
                                   out.data().data());
    benchmark::DoNotOptimize(out.data().data());
  }
  state.counters["flops"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * static_cast<double>(n) *
          static_cast<double>(n),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_MatmulSeedReference)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

/// The acceptance sweep: root-parallel MCTS iterations/sec at 1/2/4/8
/// workers on the Table-1 workload, written as CSV like the figure benches.
void run_mcts_thread_sweep(const char* csv_path) {
  DagGeneratorOptions gen;
  gen.num_tasks = 50;
  Rng rng(11);
  const Dag dag = generate_random_dag(gen, rng);

  Table table({"threads", "search (s)", "decisions/s", "iters/s",
               "rollouts", "makespan"});
  table.set_precision(3);
  CsvWriter csv(csv_path);
  csv.write("threads", "search_seconds", "decisions_per_sec",
            "iters_per_sec", "rollouts", "makespan");
  for (const int threads : {1, 2, 4, 8}) {
    MctsOptions options;
    options.initial_budget = 500;
    options.min_budget = 5;
    options.num_threads = threads;
    MctsScheduler mcts(options);
    const Schedule schedule = mcts.schedule(dag, kCapacity);
    const auto& stats = mcts.last_stats();
    const double dps =
        stats.search_seconds > 0.0
            ? static_cast<double>(stats.decisions) / stats.search_seconds
            : 0.0;
    table.add(threads, stats.search_seconds, dps,
              stats.iterations_per_second(),
              static_cast<long long>(stats.rollouts),
              static_cast<long long>(schedule.makespan(dag)));
    csv.write(threads, stats.search_seconds, dps,
              stats.iterations_per_second(),
              static_cast<long long>(stats.rollouts),
              static_cast<long long>(schedule.makespan(dag)));
  }
  std::printf("MCTS root-parallel sweep (Table-1 workload, budget 500):\n");
  table.print();
  std::printf("wrote %s\n\n", csv_path);
}

/// The guided-policy forward acceptance sweep (ISSUE: >= 2x single-thread
/// throughput under portable flags).  Replays the seed inference path —
/// per-state fresh featurize vector, single-row Mlp::logits, allocating
/// valid_output_mask + masked_softmax — against the batched zero-allocation
/// fast path (action_probs_batch) over the same decision states, checks the
/// probabilities are bit-identical, and writes the timings as JSON.
void run_policy_forward_bench(const char* json_path) {
  constexpr std::size_t kStates = 32;
  constexpr int kReps = 2000;
  Rng rng(6);
  Policy policy = Policy::make(FeaturizerOptions{}, 2, rng);
  const auto states = episode_states(kStates);
  std::vector<const SchedulingEnv*> ptrs;
  for (const auto& s : states) ptrs.push_back(&s);

  // Faithful replica of the seed per-state path: fresh featurize vector,
  // Mlp::forward building its Forward cache (input copy + one cached
  // pre-activation copy per layer) on the seed i-k-j matmul with the
  // a == 0.0 skip, allocating mask and probs vectors per state.  Matrix's
  // own matmul now routes through the tiled kernels, so the old path has
  // to be reconstructed here to serve as the before/after baseline.
  const auto seed_logits = [&](const std::vector<double>& features) {
    const auto& layers = policy.net().layers();
    Matrix input = Matrix::from_rows(1, features.size(), features);
    std::vector<Matrix> pre_activations;
    pre_activations.reserve(layers.size());
    Matrix logits;
    Matrix activation = input;
    for (std::size_t l = 0; l < layers.size(); ++l) {
      const Matrix& w = layers[l].weights;
      Matrix z(1, w.cols());
      kernels::reference_matmul_into(activation.data().data(), 1,
                                     activation.cols(), w.data().data(),
                                     w.cols(), z.data().data());
      for (std::size_t j = 0; j < w.cols(); ++j) {
        z.data()[j] += layers[l].bias[j];
      }
      pre_activations.push_back(z);
      if (l + 1 < layers.size()) {
        for (auto& x : z.data()) x = x > 0.0 ? x : 0.0;
        activation = std::move(z);
      } else {
        logits = std::move(z);
      }
    }
    benchmark::DoNotOptimize(pre_activations.data());
    return std::vector<double>(logits.data().begin(), logits.data().end());
  };
  const auto seed_pass = [&](std::vector<std::vector<double>>& out) {
    out.clear();
    for (const auto* env : ptrs) {
      std::vector<double> features;
      policy.featurizer().featurize(*env, features);
      const std::vector<double> logits = seed_logits(features);
      const std::vector<bool> mask = policy.valid_output_mask(*env);
      out.push_back(Policy::masked_softmax(logits, mask));
    }
  };
  std::vector<std::vector<bool>> masks;
  std::vector<std::vector<double>> fast_probs;
  const auto fast_pass = [&] {
    policy.action_probs_batch(ptrs.data(), ptrs.size(), masks, fast_probs);
  };

  // Warm up (and grow the workspace to its high-water mark), then verify
  // both paths produce the same bits before timing them.
  std::vector<std::vector<double>> seed_probs;
  seed_pass(seed_probs);
  fast_pass();
  bool bit_identical = seed_probs.size() == fast_probs.size();
  for (std::size_t i = 0; bit_identical && i < seed_probs.size(); ++i) {
    bit_identical = seed_probs[i].size() == fast_probs[i].size() &&
                    std::memcmp(seed_probs[i].data(), fast_probs[i].data(),
                                seed_probs[i].size() * sizeof(double)) == 0;
  }

  using Clock = std::chrono::steady_clock;
  const auto seed_start = Clock::now();
  for (int r = 0; r < kReps; ++r) seed_pass(seed_probs);
  const double seed_seconds =
      std::chrono::duration<double>(Clock::now() - seed_start).count();
  const auto fast_start = Clock::now();
  for (int r = 0; r < kReps; ++r) fast_pass();
  const double fast_seconds =
      std::chrono::duration<double>(Clock::now() - fast_start).count();

  const double total_states = static_cast<double>(kStates) * kReps;
  const double seed_sps = total_states / seed_seconds;
  const double fast_sps = total_states / fast_seconds;
  const double speedup = seed_seconds / fast_seconds;

  std::printf(
      "Guided-policy forward (single thread, %zu states x %d reps):\n"
      "  seed path    %10.0f states/s\n"
      "  batched path %10.0f states/s\n"
      "  speedup      %10.2fx   bit-identical: %s\n\n",
      kStates, kReps, seed_sps, fast_sps, speedup,
      bit_identical ? "yes" : "NO");

  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"policy_forward_fast_path\",\n"
                 "  \"workload\": \"50-task DAG, max_ready 15, paper topology"
                 " {163,256,32,32,16}\",\n"
                 "  \"states\": %zu,\n"
                 "  \"reps\": %d,\n"
                 "  \"seed_seconds\": %.6f,\n"
                 "  \"fast_seconds\": %.6f,\n"
                 "  \"seed_states_per_sec\": %.1f,\n"
                 "  \"fast_states_per_sec\": %.1f,\n"
                 "  \"speedup\": %.3f,\n"
                 "  \"bit_identical\": %s,\n"
                 "  \"flags\": \"portable (no -march=native), single thread\"\n"
                 "}\n",
                 kStates, kReps, seed_seconds, fast_seconds, seed_sps,
                 fast_sps, speedup, bit_identical ? "true" : "false");
    std::fclose(f);
    std::printf("wrote %s\n\n", json_path);
  }
}

/// The leaf-parallel acceptance sweep (DESIGN.md §11): root vs leaf search
/// throughput at 1/2/4/8 workers across small/medium/large DAGs, DRL-guided
/// (untrained weights — identical network cost to trained ones), equal
/// iteration budget in both modes.  states/s counts completed search
/// iterations per wall-clock second inside the search; makespans are
/// reported so quality regressions show up next to the speedup.  Writes the
/// grid plus a 4-thread leaf/root summary as JSON (committed as
/// BENCH_mcts_leaf_parallel.json).
void run_search_mode_sweep(const char* json_path) {
  // AlphaZero-style budgets: large enough per decision that the evaluator
  // has real batches to drain (a budget that decays to single digits caps
  // every batch at single digits, throttling both modes equally but hiding
  // the batching win leaf mode exists for).
  constexpr std::int64_t kInitialBudget = 256;
  constexpr std::int64_t kMinBudget = 128;
  // 32 in-flight descents per tick = 4 ticks per min-budget decision: deep
  // enough trees for transpositions to recur, big enough evaluator batches
  // for the fused forward to pay.
  constexpr int kLeafBatchSize = 32;
  struct Cell {
    std::size_t tasks = 0;
    int threads = 0;
    const char* mode = "";
    double seconds = 0.0;
    std::int64_t iterations = 0;
    double sps = 0.0;
    Time makespan = 0;
    std::int64_t tt_hits = 0;
    std::int64_t tt_misses = 0;
    std::int64_t batched_evals = 0;
    std::int64_t batched_rows = 0;
    std::int64_t vloss_collisions = 0;
    std::int64_t rollout_cache_hits = 0;
    std::int64_t rollout_cache_misses = 0;
  };
  std::vector<Cell> cells;

  Rng policy_rng(6);
  const auto policy = std::make_shared<const Policy>(
      Policy::make(FeaturizerOptions{}, 2, policy_rng));

  Table table({"tasks", "threads", "mode", "search (s)", "states/s",
               "makespan", "tt hit%", "roll hit%", "rows/eval"});
  table.set_precision(3);
  for (const std::size_t tasks : {25u, 50u, 100u}) {
    const Dag dag = benchmark_dag(tasks, 11);
    for (const int threads : {1, 2, 4, 8}) {
      for (const SearchMode mode : {SearchMode::kRoot, SearchMode::kLeaf}) {
        MctsOptions options;
        options.initial_budget = kInitialBudget;
        options.min_budget = kMinBudget;
        options.num_threads = threads;
        options.search_mode = mode;
        options.leaf_batch_size = kLeafBatchSize;
        options.name = "Spear";
        MctsScheduler mcts(options, std::make_shared<DrlDecisionPolicy>(
                                        policy, /*greedy=*/true));
        const Schedule schedule = mcts.schedule(dag, kCapacity);
        const auto& stats = mcts.last_stats();
        Cell cell;
        cell.tasks = tasks;
        cell.threads = threads;
        cell.mode = mode == SearchMode::kLeaf ? "leaf" : "root";
        cell.seconds = stats.search_seconds;
        cell.iterations = stats.iterations;
        cell.sps = stats.iterations_per_second();
        cell.makespan = schedule.makespan(dag);
        cell.tt_hits = stats.tt_hits;
        cell.tt_misses = stats.tt_misses;
        cell.batched_evals = stats.batched_evals;
        cell.batched_rows = stats.batched_rows;
        cell.vloss_collisions = stats.vloss_collisions;
        cell.rollout_cache_hits = stats.rollout_cache_hits;
        cell.rollout_cache_misses = stats.rollout_cache_misses;
        cells.push_back(cell);
        const double probes = static_cast<double>(cell.tt_hits +
                                                  cell.tt_misses);
        const double roll_probes = static_cast<double>(
            cell.rollout_cache_hits + cell.rollout_cache_misses);
        table.add(static_cast<long long>(tasks), threads, cell.mode,
                  cell.seconds, cell.sps,
                  static_cast<long long>(cell.makespan),
                  probes > 0.0 ? 100.0 * static_cast<double>(cell.tt_hits) /
                                     probes
                               : 0.0,
                  roll_probes > 0.0
                      ? 100.0 *
                            static_cast<double>(cell.rollout_cache_hits) /
                            roll_probes
                      : 0.0,
                  cell.batched_evals > 0
                      ? static_cast<double>(cell.batched_rows) /
                            static_cast<double>(cell.batched_evals)
                      : 0.0);
      }
    }
  }
  std::printf("Search-mode sweep (DRL-guided, budget %lld -> %lld, equal "
              "iteration budget per mode):\n",
              static_cast<long long>(kInitialBudget),
              static_cast<long long>(kMinBudget));
  table.print();

  // 4-thread acceptance summary: leaf states/s over root states/s per size.
  const auto find_cell = [&](std::size_t tasks, int threads,
                             const char* mode) -> const Cell* {
    for (const Cell& c : cells) {
      if (c.tasks == tasks && c.threads == threads &&
          std::strcmp(c.mode, mode) == 0) {
        return &c;
      }
    }
    return nullptr;
  };

  if (std::FILE* f = std::fopen(json_path, "w")) {
    std::fprintf(f,
                 "{\n"
                 "  \"bench\": \"mcts_leaf_parallel\",\n"
                 "  \"workload\": \"random DAGs (seed 11), DRL-guided MCTS, "
                 "untrained paper-topology policy, greedy rollouts\",\n"
                 "  \"initial_budget\": %lld,\n"
                 "  \"min_budget\": %lld,\n"
                 "  \"leaf_batch_size\": %d,\n"
                 "  \"states_per_sec\": \"search iterations per second of "
                 "search wall time; equal iteration budget in both modes\",\n"
                 "  \"grid\": [\n",
                 static_cast<long long>(kInitialBudget),
                 static_cast<long long>(kMinBudget), kLeafBatchSize);
    for (std::size_t i = 0; i < cells.size(); ++i) {
      const Cell& c = cells[i];
      std::fprintf(
          f,
          "    {\"tasks\": %zu, \"threads\": %d, \"mode\": \"%s\", "
          "\"search_seconds\": %.6f, \"iterations\": %lld, "
          "\"states_per_sec\": %.1f, \"makespan\": %lld, \"tt_hits\": %lld, "
          "\"tt_misses\": %lld, \"evaluator_batches\": %lld, "
          "\"evaluator_rows\": %lld, \"vloss_collisions\": %lld, "
          "\"rollout_cache_hits\": %lld, \"rollout_cache_misses\": %lld}%s\n",
          c.tasks, c.threads, c.mode, c.seconds,
          static_cast<long long>(c.iterations), c.sps,
          static_cast<long long>(c.makespan),
          static_cast<long long>(c.tt_hits),
          static_cast<long long>(c.tt_misses),
          static_cast<long long>(c.batched_evals),
          static_cast<long long>(c.batched_rows),
          static_cast<long long>(c.vloss_collisions),
          static_cast<long long>(c.rollout_cache_hits),
          static_cast<long long>(c.rollout_cache_misses),
          i + 1 < cells.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n  \"four_thread_summary\": [\n");
    bool first = true;
    for (const std::size_t tasks : {25u, 50u, 100u}) {
      const Cell* root = find_cell(tasks, 4, "root");
      const Cell* leaf = find_cell(tasks, 4, "leaf");
      if (!root || !leaf) continue;
      const double speedup = root->sps > 0.0 ? leaf->sps / root->sps : 0.0;
      std::fprintf(f,
                   "%s    {\"tasks\": %zu, \"root_states_per_sec\": %.1f, "
                   "\"leaf_states_per_sec\": %.1f, \"speedup\": %.3f, "
                   "\"root_makespan\": %lld, \"leaf_makespan\": %lld}",
                   first ? "" : ",\n", tasks, root->sps, leaf->sps, speedup,
                   static_cast<long long>(root->makespan),
                   static_cast<long long>(leaf->makespan));
      first = false;
      std::printf("tasks %zu @ 4 threads: leaf %.0f states/s vs root %.0f "
                  "states/s (%.2fx), makespan %lld vs %lld\n",
                  tasks, leaf->sps, root->sps, speedup,
                  static_cast<long long>(leaf->makespan),
                  static_cast<long long>(root->makespan));
    }
    std::fprintf(f, "\n  ]\n}\n");
    std::fclose(f);
    std::printf("wrote %s\n\n", json_path);
  }
}

}  // namespace
}  // namespace spear

int main(int argc, char** argv) {
  // Peel off the observability flags by hand — google-benchmark owns the
  // rest of argv and rejects flags it does not know.
  std::string metrics_out, trace_out;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Accept both --flag=value and --flag value, like the Flags parser.
    const auto take = [&](const char* name, std::string& out) {
      const std::string eq = std::string(name) + "=";
      if (arg.rfind(eq, 0) == 0) {
        out = arg.substr(eq.size());
        return true;
      }
      if (arg == name && i + 1 < argc) {
        out = argv[++i];
        return true;
      }
      return false;
    };
    if (!take("--metrics-out", metrics_out) &&
        !take("--trace-out", trace_out)) {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (!metrics_out.empty()) {
    spear::obs::install_metrics(
        std::make_shared<spear::obs::MetricsRegistry>());
  }
  if (!trace_out.empty()) {
    spear::obs::install_trace(
        std::make_shared<spear::obs::TraceEventWriter>(trace_out));
  }

  spear::run_mcts_thread_sweep("bench_micro_mcts_threads.csv");
  spear::run_policy_forward_bench("bench_micro_policy_forward.json");
  spear::run_search_mode_sweep("bench_micro_leaf_parallel.json");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();

  if (!metrics_out.empty()) {
    spear::obs::RunReport report("bench_micro");
    const auto snapshot = spear::obs::metrics()->snapshot();
    report.write(metrics_out, &snapshot);
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  spear::obs::shutdown();
  if (!trace_out.empty()) std::printf("wrote %s\n", trace_out.c_str());
  return 0;
}
