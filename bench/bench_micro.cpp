// Google-benchmark micro-benchmarks for the hot paths: simulator stepping,
// feature extraction, NN forward/backward, MCTS decisions, Graphene's
// virtual packing, and DAG generation.  These guard the throughput
// assumptions behind the bench-harness defaults.

#include <benchmark/benchmark.h>

#include <memory>

#include "dag/generator.h"
#include "env/featurizer.h"
#include "mcts/mcts.h"
#include "nn/mlp.h"
#include "rl/policy.h"
#include "sched/graphene.h"
#include "sched/tetris.h"

namespace spear {
namespace {

const ResourceVector kCapacity{1.0, 1.0};

Dag benchmark_dag(std::size_t tasks, std::uint64_t seed = 1) {
  DagGeneratorOptions options;
  options.num_tasks = tasks;
  Rng rng(seed);
  return generate_random_dag(options, rng);
}

void BM_GenerateDag(benchmark::State& state) {
  DagGeneratorOptions options;
  options.num_tasks = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_random_dag(options, rng));
  }
}
BENCHMARK(BM_GenerateDag)->Arg(25)->Arg(100);

void BM_DagFeatures(benchmark::State& state) {
  const Dag dag = benchmark_dag(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DagFeatures(dag));
  }
}
BENCHMARK(BM_DagFeatures)->Arg(25)->Arg(100);

void BM_RandomEpisode(benchmark::State& state) {
  const auto dag = std::make_shared<Dag>(
      benchmark_dag(static_cast<std::size_t>(state.range(0))));
  const auto features = std::make_shared<DagFeatures>(*dag);
  EnvOptions options;
  options.max_ready = dag->num_tasks();
  Rng rng(3);
  for (auto _ : state) {
    SchedulingEnv env(dag, kCapacity, options, features);
    while (!env.done()) {
      const auto actions = env.valid_actions();
      const auto pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(actions.size()) - 1));
      if (actions[pick] == SchedulingEnv::kProcessAction) {
        env.process_to_next_finish();
      } else {
        env.step(actions[pick]);
      }
    }
    benchmark::DoNotOptimize(env.makespan());
  }
}
BENCHMARK(BM_RandomEpisode)->Arg(25)->Arg(100);

void BM_Featurize(benchmark::State& state) {
  const auto dag = std::make_shared<Dag>(benchmark_dag(50));
  EnvOptions env_options;
  env_options.max_ready = 15;
  SchedulingEnv env(dag, kCapacity, env_options);
  env.step(0);
  Featurizer featurizer;
  std::vector<double> out;
  for (auto _ : state) {
    featurizer.featurize(env, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Featurize);

void BM_MlpForward(benchmark::State& state) {
  Rng rng(5);
  Mlp net({163, 256, 32, 32, 16}, rng);  // the paper topology
  Matrix input(static_cast<std::size_t>(state.range(0)), 163, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(input));
  }
}
BENCHMARK(BM_MlpForward)->Arg(1)->Arg(32);

void BM_MlpBackward(benchmark::State& state) {
  Rng rng(5);
  Mlp net({163, 256, 32, 32, 16}, rng);
  Matrix input(static_cast<std::size_t>(state.range(0)), 163, 0.1);
  const auto cache = net.forward(input);
  Matrix d_logits(input.rows(), 16, 0.01);
  auto grads = net.make_gradients();
  for (auto _ : state) {
    grads.zero();
    net.backward(cache, d_logits, grads);
    benchmark::DoNotOptimize(grads.max_abs());
  }
}
BENCHMARK(BM_MlpBackward)->Arg(1)->Arg(32);

void BM_PolicyActionProbs(benchmark::State& state) {
  Rng rng(6);
  Policy policy = Policy::make(FeaturizerOptions{}, 2, rng);
  const auto dag = std::make_shared<Dag>(benchmark_dag(50));
  EnvOptions env_options;
  env_options.max_ready = 15;
  SchedulingEnv env(dag, kCapacity, env_options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.action_probs(env));
  }
}
BENCHMARK(BM_PolicyActionProbs);

void BM_TetrisSchedule(benchmark::State& state) {
  const Dag dag = benchmark_dag(static_cast<std::size_t>(state.range(0)));
  auto tetris = make_tetris_scheduler();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tetris->schedule(dag, kCapacity));
  }
}
BENCHMARK(BM_TetrisSchedule)->Arg(25)->Arg(100);

void BM_GrapheneSchedule(benchmark::State& state) {
  const Dag dag = benchmark_dag(static_cast<std::size_t>(state.range(0)));
  auto graphene = make_graphene_scheduler();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graphene->schedule(dag, kCapacity));
  }
}
BENCHMARK(BM_GrapheneSchedule)->Arg(25)->Arg(100);

void BM_MctsSchedule25(benchmark::State& state) {
  const Dag dag = benchmark_dag(25);
  MctsOptions options;
  options.initial_budget = state.range(0);
  options.min_budget = std::max<std::int64_t>(state.range(0) / 4, 1);
  for (auto _ : state) {
    MctsScheduler mcts(options);
    benchmark::DoNotOptimize(mcts.schedule(dag, kCapacity));
  }
}
BENCHMARK(BM_MctsSchedule25)->Arg(10)->Arg(50);

}  // namespace
}  // namespace spear

BENCHMARK_MAIN();
