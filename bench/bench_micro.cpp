// Google-benchmark micro-benchmarks for the hot paths: simulator stepping,
// feature extraction, NN forward/backward, MCTS decisions (serial and
// root-parallel), Matrix::matmul, Graphene's virtual packing, and DAG
// generation.  These guard the throughput assumptions behind the
// bench-harness defaults.
//
// Before the google benchmarks run, main() performs an MCTS thread sweep on
// the Table-1 workload (50-task DAG, budget 500) at 1/2/4/8 workers and
// writes bench_micro_mcts_threads.csv — decisions/sec and iterations/sec
// per thread count, same CSV style as the figure benches.

#include <benchmark/benchmark.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/table.h"
#include "dag/generator.h"
#include "obs/obs.h"
#include "obs/report.h"
#include "env/featurizer.h"
#include "mcts/mcts.h"
#include "nn/matrix.h"
#include "nn/mlp.h"
#include "rl/policy.h"
#include "sched/graphene.h"
#include "sched/tetris.h"

namespace spear {
namespace {

const ResourceVector kCapacity{1.0, 1.0};

Dag benchmark_dag(std::size_t tasks, std::uint64_t seed = 1) {
  DagGeneratorOptions options;
  options.num_tasks = tasks;
  Rng rng(seed);
  return generate_random_dag(options, rng);
}

void BM_GenerateDag(benchmark::State& state) {
  DagGeneratorOptions options;
  options.num_tasks = static_cast<std::size_t>(state.range(0));
  Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(generate_random_dag(options, rng));
  }
}
BENCHMARK(BM_GenerateDag)->Arg(25)->Arg(100);

void BM_DagFeatures(benchmark::State& state) {
  const Dag dag = benchmark_dag(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(DagFeatures(dag));
  }
}
BENCHMARK(BM_DagFeatures)->Arg(25)->Arg(100);

void BM_RandomEpisode(benchmark::State& state) {
  const auto dag = std::make_shared<Dag>(
      benchmark_dag(static_cast<std::size_t>(state.range(0))));
  const auto features = std::make_shared<DagFeatures>(*dag);
  EnvOptions options;
  options.max_ready = dag->num_tasks();
  Rng rng(3);
  for (auto _ : state) {
    SchedulingEnv env(dag, kCapacity, options, features);
    while (!env.done()) {
      const auto actions = env.valid_actions();
      const auto pick = static_cast<std::size_t>(rng.uniform_int(
          0, static_cast<std::int64_t>(actions.size()) - 1));
      if (actions[pick] == SchedulingEnv::kProcessAction) {
        env.process_to_next_finish();
      } else {
        env.step(actions[pick]);
      }
    }
    benchmark::DoNotOptimize(env.makespan());
  }
}
BENCHMARK(BM_RandomEpisode)->Arg(25)->Arg(100);

void BM_Featurize(benchmark::State& state) {
  const auto dag = std::make_shared<Dag>(benchmark_dag(50));
  EnvOptions env_options;
  env_options.max_ready = 15;
  SchedulingEnv env(dag, kCapacity, env_options);
  env.step(0);
  Featurizer featurizer;
  std::vector<double> out;
  for (auto _ : state) {
    featurizer.featurize(env, out);
    benchmark::DoNotOptimize(out.data());
  }
}
BENCHMARK(BM_Featurize);

void BM_MlpForward(benchmark::State& state) {
  Rng rng(5);
  Mlp net({163, 256, 32, 32, 16}, rng);  // the paper topology
  Matrix input(static_cast<std::size_t>(state.range(0)), 163, 0.1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(net.forward(input));
  }
}
BENCHMARK(BM_MlpForward)->Arg(1)->Arg(32);

void BM_MlpBackward(benchmark::State& state) {
  Rng rng(5);
  Mlp net({163, 256, 32, 32, 16}, rng);
  Matrix input(static_cast<std::size_t>(state.range(0)), 163, 0.1);
  const auto cache = net.forward(input);
  Matrix d_logits(input.rows(), 16, 0.01);
  auto grads = net.make_gradients();
  for (auto _ : state) {
    grads.zero();
    net.backward(cache, d_logits, grads);
    benchmark::DoNotOptimize(grads.max_abs());
  }
}
BENCHMARK(BM_MlpBackward)->Arg(1)->Arg(32);

void BM_PolicyActionProbs(benchmark::State& state) {
  Rng rng(6);
  Policy policy = Policy::make(FeaturizerOptions{}, 2, rng);
  const auto dag = std::make_shared<Dag>(benchmark_dag(50));
  EnvOptions env_options;
  env_options.max_ready = 15;
  SchedulingEnv env(dag, kCapacity, env_options);
  for (auto _ : state) {
    benchmark::DoNotOptimize(policy.action_probs(env));
  }
}
BENCHMARK(BM_PolicyActionProbs);

void BM_TetrisSchedule(benchmark::State& state) {
  const Dag dag = benchmark_dag(static_cast<std::size_t>(state.range(0)));
  auto tetris = make_tetris_scheduler();
  for (auto _ : state) {
    benchmark::DoNotOptimize(tetris->schedule(dag, kCapacity));
  }
}
BENCHMARK(BM_TetrisSchedule)->Arg(25)->Arg(100);

void BM_GrapheneSchedule(benchmark::State& state) {
  const Dag dag = benchmark_dag(static_cast<std::size_t>(state.range(0)));
  auto graphene = make_graphene_scheduler();
  for (auto _ : state) {
    benchmark::DoNotOptimize(graphene->schedule(dag, kCapacity));
  }
}
BENCHMARK(BM_GrapheneSchedule)->Arg(25)->Arg(100);

void BM_MctsSchedule25(benchmark::State& state) {
  const Dag dag = benchmark_dag(25);
  MctsOptions options;
  options.initial_budget = state.range(0);
  options.min_budget = std::max<std::int64_t>(state.range(0) / 4, 1);
  for (auto _ : state) {
    MctsScheduler mcts(options);
    benchmark::DoNotOptimize(mcts.schedule(dag, kCapacity));
  }
}
BENCHMARK(BM_MctsSchedule25)->Arg(10)->Arg(50);

void BM_MctsScheduleThreads(benchmark::State& state) {
  // Table-1 workload shape: 50-task DAG, budget 500.  The scheduler (and
  // its thread pool) is reused across iterations, as in a long-lived
  // service.  decisions/s and iters/s counters report search throughput.
  const Dag dag = benchmark_dag(50, 11);
  MctsOptions options;
  options.initial_budget = 500;
  options.min_budget = 5;
  options.num_threads = static_cast<int>(state.range(0));
  MctsScheduler mcts(options);
  std::int64_t decisions = 0;
  std::int64_t iterations = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mcts.schedule(dag, kCapacity));
    decisions += mcts.last_stats().decisions;
    iterations += mcts.last_stats().iterations;
  }
  state.counters["decisions/s"] = benchmark::Counter(
      static_cast<double>(decisions), benchmark::Counter::kIsRate);
  state.counters["iters/s"] = benchmark::Counter(
      static_cast<double>(iterations), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MctsScheduleThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_Matmul(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Matrix a(n, n, 0.5);
  const Matrix b(n, n, 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.matmul(b));
  }
  // 2*n^3 flops per product (n^3 multiplies + n^3 adds).
  state.counters["flops"] = benchmark::Counter(
      2.0 * static_cast<double>(n) * static_cast<double>(n) *
          static_cast<double>(n),
      benchmark::Counter::kIsIterationInvariantRate);
}
BENCHMARK(BM_Matmul)->Arg(32)->Arg(64)->Arg(128)->Arg(256);

/// The acceptance sweep: root-parallel MCTS iterations/sec at 1/2/4/8
/// workers on the Table-1 workload, written as CSV like the figure benches.
void run_mcts_thread_sweep(const char* csv_path) {
  DagGeneratorOptions gen;
  gen.num_tasks = 50;
  Rng rng(11);
  const Dag dag = generate_random_dag(gen, rng);

  Table table({"threads", "search (s)", "decisions/s", "iters/s",
               "rollouts", "makespan"});
  table.set_precision(3);
  CsvWriter csv(csv_path);
  csv.write("threads", "search_seconds", "decisions_per_sec",
            "iters_per_sec", "rollouts", "makespan");
  for (const int threads : {1, 2, 4, 8}) {
    MctsOptions options;
    options.initial_budget = 500;
    options.min_budget = 5;
    options.num_threads = threads;
    MctsScheduler mcts(options);
    const Schedule schedule = mcts.schedule(dag, kCapacity);
    const auto& stats = mcts.last_stats();
    const double dps =
        stats.search_seconds > 0.0
            ? static_cast<double>(stats.decisions) / stats.search_seconds
            : 0.0;
    table.add(threads, stats.search_seconds, dps,
              stats.iterations_per_second(),
              static_cast<long long>(stats.rollouts),
              static_cast<long long>(schedule.makespan(dag)));
    csv.write(threads, stats.search_seconds, dps,
              stats.iterations_per_second(),
              static_cast<long long>(stats.rollouts),
              static_cast<long long>(schedule.makespan(dag)));
  }
  std::printf("MCTS root-parallel sweep (Table-1 workload, budget 500):\n");
  table.print();
  std::printf("wrote %s\n\n", csv_path);
}

}  // namespace
}  // namespace spear

int main(int argc, char** argv) {
  // Peel off the observability flags by hand — google-benchmark owns the
  // rest of argv and rejects flags it does not know.
  std::string metrics_out, trace_out;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    // Accept both --flag=value and --flag value, like the Flags parser.
    const auto take = [&](const char* name, std::string& out) {
      const std::string eq = std::string(name) + "=";
      if (arg.rfind(eq, 0) == 0) {
        out = arg.substr(eq.size());
        return true;
      }
      if (arg == name && i + 1 < argc) {
        out = argv[++i];
        return true;
      }
      return false;
    };
    if (!take("--metrics-out", metrics_out) &&
        !take("--trace-out", trace_out)) {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  if (!metrics_out.empty()) {
    spear::obs::install_metrics(
        std::make_shared<spear::obs::MetricsRegistry>());
  }
  if (!trace_out.empty()) {
    spear::obs::install_trace(
        std::make_shared<spear::obs::TraceEventWriter>(trace_out));
  }

  spear::run_mcts_thread_sweep("bench_micro_mcts_threads.csv");
  ::benchmark::Initialize(&argc, argv);
  if (::benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  ::benchmark::RunSpecifiedBenchmarks();

  if (!metrics_out.empty()) {
    spear::obs::RunReport report("bench_micro");
    const auto snapshot = spear::obs::metrics()->snapshot();
    report.write(metrics_out, &snapshot);
    std::printf("wrote %s\n", metrics_out.c_str());
  }
  spear::obs::shutdown();
  if (!trace_out.empty()) std::printf("wrote %s\n", trace_out.c_str());
  return 0;
}
