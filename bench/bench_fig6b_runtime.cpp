// Fig. 6(b): scheduling runtime of Spear vs Graphene on the Fig. 6(a)
// workload, reported as a CDF over jobs.  In the paper both medians sit
// around 500 s on a 2014 laptop, with Graphene showing a heavier tail
// (mean ~1000 s vs ~500 s); the claim to reproduce is the *shape*: Spear's
// runtime is comparable to Graphene's, and the RL guidance adds negligible
// overhead on top of pure MCTS.
//
// Scaled default: 6 DAGs x 40 tasks, budget 200->50; --paper = 10 x 100,
// budget 1000->100.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "sched/graphene.h"
#include "support.h"

int main(int argc, char** argv) {
  using namespace spear;
  using namespace spear::bench;

  Flags flags;
  const auto paper = flags.define_bool("paper", false, "paper-scale run");
  const auto jobs = flags.define_int("jobs", 6, "number of DAGs");
  const auto tasks = flags.define_int("tasks", 40, "tasks per DAG");
  const auto budget = flags.define_int("budget", 200, "Spear initial budget");
  const auto min_budget = flags.define_int("min-budget", 50, "Spear min budget");
  const auto seed = flags.define_int("seed", 6, "workload seed");
  const auto threads =
      flags.define_int("threads", 1, "parallel search workers");
  const auto search_mode = flags.define_string(
      "search-mode", "root",
      "parallel search architecture: root (per-worker trees) or leaf "
      "(shared tree + batched central evaluator)");
  const auto tree_reuse = flags.define_bool(
      "tree-reuse", true,
      "leaf mode: reuse the chosen subtree across decisions "
      "(--no-tree-reuse disables)");
  const auto policy_path = flags.define_string(
      "policy", "bench_policy.txt", "policy cache file (empty = retrain)");
  const auto csv_prefix =
      flags.define_string("csv", "fig6b_runtime", "CSV output prefix");
  ObsFlags obs_flags(flags);
  flags.parse(argc, argv);
  obs_flags.install();
  const SearchMode mode = parse_search_mode(*search_mode);

  const std::size_t n_jobs = *paper ? 10 : static_cast<std::size_t>(*jobs);
  const std::size_t n_tasks = *paper ? 100 : static_cast<std::size_t>(*tasks);
  const std::int64_t b_init = *paper ? 1000 : *budget;
  const std::int64_t b_min = *paper ? 100 : *min_budget;

  const ResourceVector capacity{1.0, 1.0};
  const auto dags =
      simulation_workload(n_jobs, n_tasks, static_cast<std::uint64_t>(*seed));

  SpearTrainingOptions training;
  auto policy = get_or_train_policy(*policy_path, training);
  SpearOptions spear_options;
  spear_options.initial_budget = b_init;
  spear_options.min_budget = b_min;
  spear_options.num_threads = static_cast<int>(*threads);
  spear_options.search_mode = mode;
  spear_options.leaf_tree_reuse = *tree_reuse;
  auto spear = make_spear_scheduler(policy, spear_options);
  auto mcts = make_mcts_scheduler(b_init, b_min, /*seed=*/42,
                                  static_cast<int>(*threads), mode,
                                  *tree_reuse);
  auto graphene = make_graphene_scheduler();

  Table table({"job", "Spear (s)", "MCTS (s)", "Graphene (s)"});
  std::vector<double> spear_times, mcts_times, graphene_times;
  MctsScheduler::Stats spear_stats, mcts_stats;
  const auto accumulate = [](MctsScheduler::Stats& into,
                             const MctsScheduler::Stats& from) {
    into.decisions += from.decisions;
    into.iterations += from.iterations;
    into.rollouts += from.rollouts;
    into.nodes_expanded += from.nodes_expanded;
    into.env_copies += from.env_copies;
    into.search_seconds += from.search_seconds;
  };
  for (std::size_t j = 0; j < dags.size(); ++j) {
    const auto s = timed_makespan(*spear, dags[j], capacity);
    accumulate(spear_stats, spear->last_stats());
    const auto m = timed_makespan(*mcts, dags[j], capacity);
    accumulate(mcts_stats, mcts->last_stats());
    const auto g = timed_makespan(*graphene, dags[j], capacity);
    spear_times.push_back(s.seconds);
    mcts_times.push_back(m.seconds);
    graphene_times.push_back(g.seconds);
    table.add(static_cast<long long>(j), s.seconds, m.seconds, g.seconds);
    std::printf("job %zu/%zu done\n", j + 1, dags.size());
  }

  std::printf("\nScheduling runtime per job (Fig. 6b):\n");
  table.set_precision(3);
  table.print();

  Table summary({"scheduler", "median (s)", "mean (s)"});
  summary.set_precision(3);
  summary.add("Spear", median(spear_times), mean(spear_times));
  summary.add("MCTS", median(mcts_times), mean(mcts_times));
  summary.add("Graphene", median(graphene_times), mean(graphene_times));
  std::printf("\nSummary (paper: Spear median ~= Graphene median; Graphene "
              "mean ~2x Spear's; RL guidance adds negligible overhead):\n");
  summary.print();

  Table telemetry({"scheduler", "threads", "s/decision", "iterations",
                   "rollouts", "iters/sec"});
  telemetry.set_precision(4);
  const auto add_telemetry = [&](const char* label,
                                 const MctsScheduler::Stats& st) {
    telemetry.add(label, static_cast<long long>(*threads),
                  st.seconds_per_decision(),
                  static_cast<long long>(st.iterations),
                  static_cast<long long>(st.rollouts),
                  st.iterations_per_second());
  };
  add_telemetry("Spear", spear_stats);
  add_telemetry("MCTS", mcts_stats);
  std::printf("\nSearch telemetry (totals over all jobs):\n");
  telemetry.print();

  write_cdf_csv(*csv_prefix + "_spear.csv", "seconds", spear_times);
  write_cdf_csv(*csv_prefix + "_mcts.csv", "seconds", mcts_times);
  write_cdf_csv(*csv_prefix + "_graphene.csv", "seconds", graphene_times);

  if (obs_flags.enabled()) {
    obs::RunReport report("bench_fig6b");
    report.set("jobs", static_cast<std::int64_t>(n_jobs));
    report.set("tasks", static_cast<std::int64_t>(n_tasks));
    report.set("initial_budget", b_init);
    report.set("min_budget", b_min);
    report.set("threads", *threads);
    report.set("search_mode", *search_mode);
    report.set("spear_median_seconds", median(spear_times));
    report.set("mcts_median_seconds", median(mcts_times));
    report.set("graphene_median_seconds", median(graphene_times));
    report.set("spear_iterations", spear_stats.iterations);
    report.set("mcts_iterations", mcts_stats.iterations);
    obs_flags.finish(report);
  }
  return 0;
}
