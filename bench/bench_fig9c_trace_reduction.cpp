// Fig. 9(c): per-job reduction of makespan relative to Graphene on the
// production trace, with Spear at a small budget (paper: initial budget
// 100, min budget 50; Spear is no worse than Graphene on 90% of the 99
// jobs and reduces the makespan by up to ~20%).
//
// Scaled default: first 20 trace jobs; --paper replays all 99.

#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "sched/graphene.h"
#include "support.h"
#include "trace/mapreduce.h"
#include "trace/trace.h"

int main(int argc, char** argv) {
  using namespace spear;
  using namespace spear::bench;

  Flags flags;
  const auto paper = flags.define_bool("paper", false, "replay all 99 jobs");
  const auto jobs_limit = flags.define_int("jobs", 20, "jobs to replay");
  const auto budget = flags.define_int("budget", 100, "Spear initial budget");
  const auto min_budget = flags.define_int("min-budget", 50, "Spear min budget");
  const auto seed = flags.define_int("seed", 3, "trace seed");
  const auto policy_path = flags.define_string(
      "policy", "bench_policy.txt", "policy cache file (empty = retrain)");
  const auto csv_path =
      flags.define_string("csv", "fig9c_trace_reduction.csv", "CSV output");
  flags.parse(argc, argv);

  const ResourceVector capacity{1.0, 1.0};
  Rng rng(static_cast<std::uint64_t>(*seed));
  auto jobs = generate_trace({}, rng);
  if (!*paper && jobs.size() > static_cast<std::size_t>(*jobs_limit)) {
    jobs.resize(static_cast<std::size_t>(*jobs_limit));
  }

  SpearTrainingOptions training;
  auto policy = get_or_train_policy(*policy_path, training);
  SpearOptions spear_options;
  spear_options.initial_budget = *budget;  // paper's trace setting: 100
  spear_options.min_budget = *min_budget;  // paper's trace setting: 50
  auto spear = make_spear_scheduler(policy, spear_options);
  auto graphene = make_graphene_scheduler();

  CsvWriter csv(*csv_path);
  csv.write("job", "spear_makespan", "graphene_makespan",
            "reduction_fraction");

  std::vector<double> reductions;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const Dag dag = mapreduce_to_dag(jobs[j]);
    const Time s = validated_makespan(*spear, dag, capacity);
    const Time g = validated_makespan(*graphene, dag, capacity);
    const double reduction =
        (static_cast<double>(g) - static_cast<double>(s)) /
        static_cast<double>(g);
    reductions.push_back(reduction);
    csv.write(jobs[j].job_id, static_cast<long long>(s),
              static_cast<long long>(g), reduction);
    std::printf("job %zu/%zu done (reduction %+.1f%%)\n", j + 1, jobs.size(),
                100.0 * reduction);
  }

  std::size_t no_worse = 0;
  for (double r : reductions) {
    if (r >= -1e-9) ++no_worse;
  }
  Table summary({"metric", "value"});
  summary.set_precision(3);
  summary.add("jobs replayed", static_cast<long long>(reductions.size()));
  summary.add("Spear no worse than Graphene (fraction)",
              static_cast<double>(no_worse) /
                  static_cast<double>(reductions.size()));
  summary.add("max reduction", max_of(reductions));
  summary.add("median reduction", median(reductions));
  summary.add("mean reduction", mean(reductions));
  std::printf("\nReduction in job duration vs Graphene (Fig. 9c — paper: no "
              "worse in 90%% of jobs, up to ~20%% reduction):\n");
  summary.print();

  write_cdf_csv("fig9c_reduction_cdf.csv", "reduction_fraction", reductions);
  return 0;
}
