// Fig. 7(b): fraction of jobs where pure MCTS beats Tetris, as a function
// of the MCTS budget (paper: 56% at budget 600, 67% at 1000, 84% at 2200;
// below ~500 Tetris wins more often than not).
//
// Scaled default: 10 DAGs x 30 tasks, budgets {10, 25, 50, 100, 200, 400};
// --paper = 100 x 100 with the paper's budget sweep.

#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "sched/tetris.h"
#include "support.h"

int main(int argc, char** argv) {
  using namespace spear;
  using namespace spear::bench;

  Flags flags;
  const auto paper = flags.define_bool("paper", false, "paper-scale run");
  const auto jobs = flags.define_int("jobs", 20, "number of DAGs");
  const auto tasks = flags.define_int("tasks", 30, "tasks per DAG");
  const auto seed = flags.define_int("seed", 8, "workload seed");
  const auto csv_path =
      flags.define_string("csv", "fig7b_mcts_vs_tetris.csv", "CSV output");
  flags.parse(argc, argv);

  const std::size_t n_jobs = *paper ? 100 : static_cast<std::size_t>(*jobs);
  const std::size_t n_tasks = *paper ? 100 : static_cast<std::size_t>(*tasks);
  const std::vector<std::int64_t> budgets =
      *paper ? std::vector<std::int64_t>{400, 500, 600, 1000, 1400, 1800, 2200}
             : std::vector<std::int64_t>{25, 100, 400, 800, 1600, 3200};

  const ResourceVector capacity{1.0, 1.0};
  const auto dags =
      simulation_workload(n_jobs, n_tasks, static_cast<std::uint64_t>(*seed));

  // Tetris is budget-independent: compute its makespans once.
  auto tetris = make_tetris_scheduler();
  std::vector<double> tetris_makespans;
  for (const auto& dag : dags) {
    tetris_makespans.push_back(
        static_cast<double>(validated_makespan(*tetris, dag, capacity)));
  }

  Table table({"budget", "MCTS beats Tetris", "ties"});
  CsvWriter csv(*csv_path);
  csv.write("budget", "mcts_win_rate", "tie_rate");

  for (const std::int64_t budget : budgets) {
    std::vector<double> mcts_makespans;
    for (const auto& dag : dags) {
      auto mcts = make_mcts_scheduler(budget, /*min_budget=*/5);
      mcts_makespans.push_back(
          static_cast<double>(validated_makespan(*mcts, dag, capacity)));
    }
    const double wins = win_rate(mcts_makespans, tetris_makespans);
    const double ties = no_worse_rate(mcts_makespans, tetris_makespans) - wins;
    table.add(static_cast<long long>(budget), wins, ties);
    csv.write(static_cast<long long>(budget), wins, ties);
    std::printf("budget %lld done (win rate %.2f)\n",
                static_cast<long long>(budget), wins);
  }

  std::printf("\nMCTS-vs-Tetris win rate by budget (Fig. 7b — the win rate "
              "should grow with budget and cross 0.5):\n");
  table.print();
  return 0;
}
