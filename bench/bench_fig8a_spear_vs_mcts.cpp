// Fig. 8(a): Spear with 10% of the budget matches pure MCTS — the payoff of
// DRL guidance (paper: 10 DAGs x 100 tasks; MCTS budget 1000 vs Spear
// budget 100; averages 810.8 (MCTS), 816.7 (Spear), 843.9 (Tetris), 884.5
// (SJF), 837.9 (CP); Spear's runtime is ~6x lower than MCTS's).
//
// Scaled default: 6 DAGs x 30 tasks; MCTS budget 300 vs Spear budget 30.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "sched/critical_path.h"
#include "sched/sjf.h"
#include "sched/tetris.h"
#include "support.h"

int main(int argc, char** argv) {
  using namespace spear;
  using namespace spear::bench;

  Flags flags;
  const auto paper = flags.define_bool("paper", false, "paper-scale run");
  const auto jobs = flags.define_int("jobs", 6, "number of DAGs");
  const auto tasks = flags.define_int("tasks", 30, "tasks per DAG");
  const auto mcts_budget = flags.define_int("mcts-budget", 300, "MCTS budget");
  const auto seed = flags.define_int("seed", 10, "workload seed");
  const auto policy_path = flags.define_string(
      "policy", "bench_policy.txt", "policy cache file (empty = retrain)");
  const auto csv_path =
      flags.define_string("csv", "fig8a_spear_vs_mcts.csv", "CSV output");
  flags.parse(argc, argv);

  const std::size_t n_jobs = *paper ? 10 : static_cast<std::size_t>(*jobs);
  const std::size_t n_tasks = *paper ? 100 : static_cast<std::size_t>(*tasks);
  const std::int64_t b_mcts = *paper ? 1000 : *mcts_budget;
  const std::int64_t b_spear = std::max<std::int64_t>(b_mcts / 10, 1);

  const ResourceVector capacity{1.0, 1.0};
  const auto dags =
      simulation_workload(n_jobs, n_tasks, static_cast<std::uint64_t>(*seed));

  SpearTrainingOptions training;
  auto policy = get_or_train_policy(*policy_path, training);
  SpearOptions spear_options;
  spear_options.initial_budget = b_spear;
  spear_options.min_budget = std::max<std::int64_t>(b_spear / 2, 1);

  std::vector<std::unique_ptr<Scheduler>> schedulers;
  schedulers.push_back(make_mcts_scheduler(b_mcts, 5));
  schedulers.push_back(make_spear_scheduler(policy, spear_options));
  schedulers.push_back(make_tetris_scheduler());
  schedulers.push_back(make_sjf_scheduler());
  schedulers.push_back(make_critical_path_scheduler());

  std::vector<std::string> headers = {"job"};
  for (const auto& s : schedulers) headers.push_back(s->name());
  headers.push_back("MCTS (s)");
  headers.push_back("Spear (s)");
  Table table(headers);
  CsvWriter csv(*csv_path);
  csv.write_row(headers);

  std::vector<std::vector<double>> makespans(schedulers.size());
  std::vector<double> mcts_seconds, spear_seconds;
  for (std::size_t j = 0; j < dags.size(); ++j) {
    std::vector<std::string> row = {std::to_string(j)};
    for (std::size_t s = 0; s < schedulers.size(); ++s) {
      const auto run = timed_makespan(*schedulers[s], dags[j], capacity);
      makespans[s].push_back(static_cast<double>(run.makespan));
      row.push_back(std::to_string(run.makespan));
      if (s == 0) mcts_seconds.push_back(run.seconds);
      if (s == 1) spear_seconds.push_back(run.seconds);
    }
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.2f", mcts_seconds.back());
    row.push_back(buf);
    std::snprintf(buf, sizeof(buf), "%.2f", spear_seconds.back());
    row.push_back(buf);
    table.add_row(row);
    csv.write_row(row);
    std::printf("job %zu/%zu done\n", j + 1, dags.size());
  }

  std::printf("\nSpear (budget %lld) vs MCTS (budget %lld) — Fig. 8a:\n",
              static_cast<long long>(b_spear), static_cast<long long>(b_mcts));
  table.print();

  Table summary({"scheduler", "average makespan"});
  for (std::size_t s = 0; s < schedulers.size(); ++s) {
    summary.add(schedulers[s]->name(), mean(makespans[s]));
  }
  std::printf("\nSummary (paper: MCTS 810.8 ~ Spear 816.7 < CP 837.9 < "
              "Tetris 843.9 < SJF 884.5; Spear uses 10%% of the budget and "
              "~1/6 the runtime):\n");
  summary.print();
  std::printf("\nmean scheduling time: MCTS %.2f s, Spear %.2f s (ratio "
              "%.1fx)\n",
              mean(mcts_seconds), mean(spear_seconds),
              mean(mcts_seconds) / std::max(mean(spear_seconds), 1e-9));
  return 0;
}
