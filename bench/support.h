// Shared helpers for the benchmark harness.
//
// Every bench binary reproduces one table or figure of the paper.  Defaults
// are scaled to finish in minutes on a single core; pass --paper for the
// paper's full-scale parameters (documented per bench).  Each bench prints
// the same rows/series the paper reports and writes CSV next to stdout.

#pragma once

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/flags.h"
#include "common/stats.h"
#include "core/spear.h"
#include "dag/generator.h"
#include "nn/serialize.h"
#include "obs/obs.h"
#include "obs/report.h"

namespace spear::bench {

/// Registers the shared observability flags (--metrics-out / --trace-out,
/// DESIGN.md §8) on a bench's Flags.  install() after parse turns the
/// global sink on; finish() at exit writes the RunReport JSON (metrics
/// snapshot + bench metadata) and closes the trace.  With neither flag set
/// everything stays disabled and the bench output is bit-identical.
class ObsFlags {
 public:
  explicit ObsFlags(Flags& flags)
      : metrics_out_(flags.define_string(
            "metrics-out", "",
            "write a run-report JSON (metrics snapshot) here")),
        trace_out_(flags.define_string(
            "trace-out", "",
            "write a Chrome trace-event JSON (chrome://tracing) here")) {}

  bool enabled() const {
    return !metrics_out_->empty() || !trace_out_->empty();
  }

  /// Installs the requested sinks.  Call once, after Flags::parse and
  /// before any worker threads start.
  void install() const {
    if (!metrics_out_->empty()) {
      obs::install_metrics(std::make_shared<obs::MetricsRegistry>());
    }
    if (!trace_out_->empty()) {
      obs::install_trace(
          std::make_shared<obs::TraceEventWriter>(*trace_out_));
    }
  }

  /// Writes the run report (if --metrics-out) and shuts the sinks down
  /// (closing the trace file).  Call after all worker threads have joined.
  void finish(obs::RunReport& report) const {
    if (!metrics_out_->empty()) {
      const obs::MetricsSnapshot snapshot = obs::metrics()->snapshot();
      report.write(*metrics_out_, &snapshot);
      std::printf("wrote %s\n", metrics_out_->c_str());
    }
    obs::shutdown();
    if (!trace_out_->empty()) {
      std::printf("wrote %s\n", trace_out_->c_str());
    }
  }

 private:
  std::shared_ptr<std::string> metrics_out_;
  std::shared_ptr<std::string> trace_out_;
};

/// Wall-clock seconds since `start`.
inline double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Times one scheduler run; returns {makespan, seconds}.
struct TimedRun {
  Time makespan = 0;
  double seconds = 0.0;
};
inline TimedRun timed_makespan(Scheduler& scheduler, const Dag& dag,
                               const ResourceVector& capacity) {
  const auto start = std::chrono::steady_clock::now();
  const Time makespan = validated_makespan(scheduler, dag, capacity);
  return {makespan, seconds_since(start)};
}

/// Loads a previously trained policy from `path` if compatible, otherwise
/// trains one with `training` (+ the given featurizer options) and saves it.
/// Caching keeps the per-bench cost down when several benches share a
/// policy.
inline std::shared_ptr<const Policy> get_or_train_policy(
    const std::string& path, const SpearTrainingOptions& training,
    FeaturizerOptions featurizer_options = {}) {
  const std::size_t resource_dims = 2;
  Featurizer featurizer(featurizer_options);
  if (!path.empty()) {
    try {
      Mlp net = load_mlp(path);
      if (net.input_dim() == featurizer.input_dim(resource_dims) &&
          net.output_dim() == featurizer.num_actions()) {
        std::printf("loaded cached policy from %s\n", path.c_str());
        return std::make_shared<const Policy>(featurizer, std::move(net),
                                              resource_dims);
      }
      std::printf("cached policy at %s has wrong shape; retraining\n",
                  path.c_str());
    } catch (const std::exception&) {
      // No cache yet: fall through to training.
    }
  }
  std::printf("training policy (examples=%zu tasks=%zu rl-epochs=%zu)...\n",
              training.num_examples, training.tasks_per_example,
              training.reinforce_epochs);
  Policy policy = train_default_spear_policy(training);
  if (!path.empty()) {
    save_mlp(policy.net(), path);
    std::printf("cached policy to %s\n", path.c_str());
  }
  return std::make_shared<const Policy>(std::move(policy));
}

/// Writes an empirical CDF as CSV: value,fraction.
inline void write_cdf_csv(const std::string& path,
                          const std::string& value_name,
                          std::vector<double> values) {
  CsvWriter csv(path);
  csv.write(value_name, "cdf");
  for (const auto& point : empirical_cdf(std::move(values))) {
    csv.write(point.value, point.fraction);
  }
  std::printf("wrote %s\n", path.c_str());
}

/// The paper's simulation workload: random layered DAGs, width 2..5.
inline std::vector<Dag> simulation_workload(std::size_t jobs,
                                            std::size_t tasks,
                                            std::uint64_t seed) {
  DagGeneratorOptions options;
  options.num_tasks = tasks;
  Rng rng(seed);
  return generate_random_dags(options, jobs, rng);
}

}  // namespace spear::bench
