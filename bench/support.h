// Shared helpers for the benchmark harness.
//
// Every bench binary reproduces one table or figure of the paper.  Defaults
// are scaled to finish in minutes on a single core; pass --paper for the
// paper's full-scale parameters (documented per bench).  Each bench prints
// the same rows/series the paper reports and writes CSV next to stdout.

#pragma once

#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/csv.h"
#include "common/stats.h"
#include "core/spear.h"
#include "dag/generator.h"
#include "nn/serialize.h"

namespace spear::bench {

/// Wall-clock seconds since `start`.
inline double seconds_since(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

/// Times one scheduler run; returns {makespan, seconds}.
struct TimedRun {
  Time makespan = 0;
  double seconds = 0.0;
};
inline TimedRun timed_makespan(Scheduler& scheduler, const Dag& dag,
                               const ResourceVector& capacity) {
  const auto start = std::chrono::steady_clock::now();
  const Time makespan = validated_makespan(scheduler, dag, capacity);
  return {makespan, seconds_since(start)};
}

/// Loads a previously trained policy from `path` if compatible, otherwise
/// trains one with `training` (+ the given featurizer options) and saves it.
/// Caching keeps the per-bench cost down when several benches share a
/// policy.
inline std::shared_ptr<const Policy> get_or_train_policy(
    const std::string& path, const SpearTrainingOptions& training,
    FeaturizerOptions featurizer_options = {}) {
  const std::size_t resource_dims = 2;
  Featurizer featurizer(featurizer_options);
  if (!path.empty()) {
    try {
      Mlp net = load_mlp(path);
      if (net.input_dim() == featurizer.input_dim(resource_dims) &&
          net.output_dim() == featurizer.num_actions()) {
        std::printf("loaded cached policy from %s\n", path.c_str());
        return std::make_shared<const Policy>(featurizer, std::move(net),
                                              resource_dims);
      }
      std::printf("cached policy at %s has wrong shape; retraining\n",
                  path.c_str());
    } catch (const std::exception&) {
      // No cache yet: fall through to training.
    }
  }
  std::printf("training policy (examples=%zu tasks=%zu rl-epochs=%zu)...\n",
              training.num_examples, training.tasks_per_example,
              training.reinforce_epochs);
  Policy policy = train_default_spear_policy(training);
  if (!path.empty()) {
    save_mlp(policy.net(), path);
    std::printf("cached policy to %s\n", path.c_str());
  }
  return std::make_shared<const Policy>(std::move(policy));
}

/// Writes an empirical CDF as CSV: value,fraction.
inline void write_cdf_csv(const std::string& path,
                          const std::string& value_name,
                          std::vector<double> values) {
  CsvWriter csv(path);
  csv.write(value_name, "cdf");
  for (const auto& point : empirical_cdf(std::move(values))) {
    csv.write(point.value, point.fraction);
  }
  std::printf("wrote %s\n", path.c_str());
}

/// The paper's simulation workload: random layered DAGs, width 2..5.
inline std::vector<Dag> simulation_workload(std::size_t jobs,
                                            std::size_t tasks,
                                            std::uint64_t seed) {
  DagGeneratorOptions options;
  options.num_tasks = tasks;
  Rng rng(seed);
  return generate_random_dags(options, jobs, rng);
}

}  // namespace spear::bench
