// Fig. 6(a): makespans of Spear vs Graphene, Tetris, SJF and CP on random
// DAGs (paper: 10 DAGs x 100 tasks, Spear budget 1000 decaying to 100;
// reported averages 820.1 / 869.8 / 890.2 / 849.0 / 896.6 for Spear /
// Graphene(?) ordering, Spear best; Spear beats Graphene in 90% of cases).
//
// Scaled default: 6 DAGs x 40 tasks, budget 200->50.  --paper restores the
// full scale (expect a long run on one core).

#include <cstdio>
#include <memory>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "sched/critical_path.h"
#include "sched/graphene.h"
#include "sched/sjf.h"
#include "sched/tetris.h"
#include "support.h"

int main(int argc, char** argv) {
  using namespace spear;
  using namespace spear::bench;

  Flags flags;
  const auto paper = flags.define_bool("paper", false, "paper-scale run");
  const auto jobs = flags.define_int("jobs", 6, "number of DAGs");
  const auto tasks = flags.define_int("tasks", 40, "tasks per DAG");
  const auto budget = flags.define_int("budget", 200, "Spear initial budget");
  const auto min_budget = flags.define_int("min-budget", 50, "Spear min budget");
  const auto seed = flags.define_int("seed", 6, "workload seed");
  const auto policy_path = flags.define_string(
      "policy", "bench_policy.txt", "policy cache file (empty = retrain)");
  const auto csv_path =
      flags.define_string("csv", "fig6a_makespan.csv", "CSV output");
  flags.parse(argc, argv);

  const std::size_t n_jobs = *paper ? 10 : static_cast<std::size_t>(*jobs);
  const std::size_t n_tasks = *paper ? 100 : static_cast<std::size_t>(*tasks);
  const std::int64_t b_init = *paper ? 1000 : *budget;
  const std::int64_t b_min = *paper ? 100 : *min_budget;

  const ResourceVector capacity{1.0, 1.0};
  const auto dags =
      simulation_workload(n_jobs, n_tasks, static_cast<std::uint64_t>(*seed));

  SpearTrainingOptions training;  // scaled-down §IV pipeline
  auto policy = get_or_train_policy(*policy_path, training);
  SpearOptions spear_options;
  spear_options.initial_budget = b_init;
  spear_options.min_budget = b_min;

  std::vector<std::unique_ptr<Scheduler>> schedulers;
  schedulers.push_back(make_spear_scheduler(policy, spear_options));
  schedulers.push_back(make_graphene_scheduler());
  schedulers.push_back(make_tetris_scheduler());
  schedulers.push_back(make_sjf_scheduler());
  schedulers.push_back(make_critical_path_scheduler());

  std::vector<std::string> headers = {"job"};
  for (const auto& s : schedulers) headers.push_back(s->name());
  Table table(headers);
  CsvWriter csv(*csv_path);
  csv.write_row(headers);

  std::vector<std::vector<double>> makespans(schedulers.size());
  for (std::size_t j = 0; j < dags.size(); ++j) {
    std::vector<std::string> row = {std::to_string(j)};
    for (std::size_t s = 0; s < schedulers.size(); ++s) {
      const Time m = validated_makespan(*schedulers[s], dags[j], capacity);
      makespans[s].push_back(static_cast<double>(m));
      row.push_back(std::to_string(m));
    }
    table.add_row(row);
    csv.write_row(row);
    std::printf("job %zu/%zu done\n", j + 1, dags.size());
  }

  std::printf("\nPer-job makespans (Fig. 6a):\n");
  table.print();

  Table summary({"scheduler", "average makespan", "wins vs Graphene",
                 "no worse than Graphene"});
  for (std::size_t s = 0; s < schedulers.size(); ++s) {
    summary.add(schedulers[s]->name(), mean(makespans[s]),
                win_rate(makespans[s], makespans[1]),
                no_worse_rate(makespans[s], makespans[1]));
  }
  std::printf("\nSummary (paper averages: Spear 820.1 best of five; Spear "
              "beats Graphene in 90%% of cases):\n");
  summary.print();
  return 0;
}
