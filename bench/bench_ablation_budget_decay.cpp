// Ablation: the paper's Eq. 4 per-depth budget decay
// (max(b_initial / depth, b_min)) vs a flat budget.  The search space
// shrinks exponentially with depth, so decay should buy a large runtime
// saving at little makespan cost.

#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "support.h"

int main(int argc, char** argv) {
  using namespace spear;
  using namespace spear::bench;

  Flags flags;
  const auto jobs = flags.define_int("jobs", 5, "number of DAGs");
  const auto tasks = flags.define_int("tasks", 25, "tasks per DAG");
  const auto budget = flags.define_int("budget", 150, "initial budget");
  const auto min_budget = flags.define_int("min-budget", 15, "min budget");
  const auto seed = flags.define_int("seed", 14, "workload seed");
  const auto csv_path =
      flags.define_string("csv", "ablation_budget_decay.csv", "CSV output");
  flags.parse(argc, argv);

  const ResourceVector capacity{1.0, 1.0};
  const auto dags = simulation_workload(static_cast<std::size_t>(*jobs),
                                        static_cast<std::size_t>(*tasks),
                                        static_cast<std::uint64_t>(*seed));

  MctsOptions decayed;
  decayed.initial_budget = *budget;
  decayed.min_budget = *min_budget;
  decayed.name = "decayed (Eq. 4)";
  MctsOptions flat = decayed;
  flat.decay_budget = false;
  flat.name = "flat";

  MctsScheduler with_decay(decayed);
  MctsScheduler without_decay(flat);

  CsvWriter csv(*csv_path);
  csv.write("job", "decayed_makespan", "decayed_seconds", "decayed_rollouts",
            "flat_makespan", "flat_seconds", "flat_rollouts");

  std::vector<double> decay_makespans, flat_makespans;
  std::vector<double> decay_seconds, flat_seconds;
  std::int64_t decay_rollouts = 0, flat_rollouts = 0;
  for (std::size_t j = 0; j < dags.size(); ++j) {
    const auto a = timed_makespan(with_decay, dags[j], capacity);
    const auto ar = with_decay.last_stats().rollouts;
    const auto b = timed_makespan(without_decay, dags[j], capacity);
    const auto br = without_decay.last_stats().rollouts;
    decay_makespans.push_back(static_cast<double>(a.makespan));
    flat_makespans.push_back(static_cast<double>(b.makespan));
    decay_seconds.push_back(a.seconds);
    flat_seconds.push_back(b.seconds);
    decay_rollouts += ar;
    flat_rollouts += br;
    csv.write(static_cast<long long>(j), static_cast<long long>(a.makespan),
              a.seconds, static_cast<long long>(ar),
              static_cast<long long>(b.makespan), b.seconds,
              static_cast<long long>(br));
    std::printf("job %zu/%zu done\n", j + 1, dags.size());
  }

  Table table({"variant", "average makespan", "mean seconds",
               "total rollouts"});
  table.set_precision(3);
  table.add(decayed.name, mean(decay_makespans), mean(decay_seconds),
            static_cast<long long>(decay_rollouts));
  table.add(flat.name, mean(flat_makespans), mean(flat_seconds),
            static_cast<long long>(flat_rollouts));
  std::printf("\nBudget-decay ablation (decay should cost little makespan "
              "while saving most of the rollouts/runtime):\n");
  table.print();
  return 0;
}
