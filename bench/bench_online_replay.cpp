// Online execution replay (DESIGN.md §14): streams the synthetic
// production trace into a live cluster and compares three execution
// policies under stochastic realized runtimes:
//
//   open-loop — plan-faithful replay of the committed schedule: tasks never
//               start before their planned start, the priority order is
//               frozen, no reaction to surprise;
//   ladder    — the repair ladder (absorb / local repair / bounded MCTS
//               re-search) plus straggler speculation;
//   oracle    — clairvoyant re-plan: the planner sees the TRUE realized
//               runtimes, so its makespan is the (unattainable) lower
//               reference for what repair can recover.
//
// Jobs arrive on a Poisson stream and are executed one at a time on the
// full cluster (a FIFO single-server queue — the simplest model that makes
// queueing delay, and therefore JCT, sensitive to per-job makespan).  The
// reported metric is the realized job completion time, JCT = finish -
// arrival, as mean and p99 over the stream.
//
// Scaled default: 12 trace jobs; --paper streams all 99.  Everything is
// deterministic per --seed.  Exits nonzero if the ladder does not strictly
// beat open-loop on mean realized JCT — the acceptance gate this bench
// exists to demonstrate.

#include <cstdio>
#include <memory>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "exec/engine.h"
#include "sched/critical_path.h"
#include "support.h"
#include "trace/mapreduce.h"
#include "trace/trace.h"

int main(int argc, char** argv) {
  using namespace spear;
  using namespace spear::bench;

  Flags flags;
  const auto paper = flags.define_bool("paper", false, "stream all 99 jobs");
  const auto jobs_limit = flags.define_int("jobs", 12, "jobs to stream");
  const auto seed = flags.define_int("seed", 42, "base seed");
  const auto sigma = flags.define_double(
      "sigma", 0.6, "lognormal runtime-noise sigma (0.6 ~ 2x spread)");
  const auto straggler_rate =
      flags.define_double("straggler-rate", 0.10, "straggler probability");
  const auto straggler_factor = flags.define_double(
      "straggler-factor", 4.0, "minimum straggler slowdown");
  const auto mean_interarrival = flags.define_double(
      "mean-interarrival", 150.0, "mean slots between job arrivals");
  const auto research_budget = flags.define_int(
      "research-budget", 128, "re-search initial iteration budget");
  const auto research_min =
      flags.define_int("research-min", 32, "re-search min iteration budget");
  const auto research_threads = flags.define_int(
      "research-threads", 1,
      "leaf-parallel re-search workers (results identical across values)");
  const auto csv_path =
      flags.define_string("csv", "online_replay.csv", "CSV output");
  ObsFlags obs_flags(flags);
  flags.parse(argc, argv);
  obs_flags.install();

  const ResourceVector capacity{1.0, 1.0};
  Rng trace_rng(static_cast<std::uint64_t>(*seed));
  auto jobs = generate_trace({}, trace_rng);
  if (!*paper && jobs.size() > static_cast<std::size_t>(*jobs_limit)) {
    jobs.resize(static_cast<std::size_t>(*jobs_limit));
  }
  ArrivalOptions arrival_options;
  arrival_options.mean_interarrival = *mean_interarrival;
  arrival_options.seed = static_cast<std::uint64_t>(*seed) ^ 0x5bf0'3635ULL;
  const std::vector<Time> arrivals =
      generate_poisson_arrivals(jobs.size(), arrival_options);

  auto planner = make_critical_path_scheduler();

  CsvWriter csv(*csv_path);
  csv.write("job", "arrival", "open_loop_jct", "ladder_jct", "oracle_jct",
            "repairs", "researches", "speculations");

  Time open_busy = 0, ladder_busy = 0, oracle_busy = 0;
  std::vector<Time> open_jcts, ladder_jcts, oracle_jcts;
  exec::ExecStats ladder_totals;
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    const auto dag = std::make_shared<Dag>(mapreduce_to_dag(jobs[j]));
    const Schedule plan = planner->schedule(*dag, capacity);
    if (const auto why = plan.validate(*dag, capacity)) {
      std::fprintf(stderr, "job %zu: invalid plan: %s\n", j, why->c_str());
      return 1;
    }

    exec::PerturbOptions perturb;
    perturb.sigma = *sigma;
    perturb.straggler_rate = *straggler_rate;
    perturb.straggler_factor = *straggler_factor;
    perturb.seed = static_cast<std::uint64_t>(*seed) ^
                   ((j + 1) * 0x9e3779b97f4a7c15ULL);

    const auto run_mode = [&](bool repair) {
      exec::ExecOptions options;
      options.repair = repair;
      options.speculate = repair;  // speculation is part of the ladder
      options.perturb = perturb;
      options.research_initial_budget = *research_budget;
      options.research_min_budget = *research_min;
      options.research_threads = static_cast<int>(*research_threads);
      options.seed = perturb.seed ^ 0xec5dec5dULL;
      exec::ExecutionEngine engine(dag, capacity, options);
      exec::ExecResult result = engine.run(plan);
      if (const auto why =
              exec::validate_events(*dag, capacity, result.events)) {
        std::fprintf(stderr, "job %zu: invalid event log: %s\n", j,
                     why->c_str());
        std::exit(1);
      }
      if (exec::replay_makespan(result.events) != result.makespan) {
        std::fprintf(stderr, "job %zu: replay makespan mismatch\n", j);
        std::exit(1);
      }
      return result;
    };
    const exec::ExecResult open = run_mode(false);
    const exec::ExecResult ladder = run_mode(true);
    ladder_totals.local_repairs += ladder.stats.local_repairs;
    ladder_totals.researches += ladder.stats.researches;
    ladder_totals.speculations += ladder.stats.speculations;
    ladder_totals.speculation_wins += ladder.stats.speculation_wins;

    // Oracle: re-plan against the TRUE first-attempt runtimes; an exact
    // replay of that plan realizes its makespan by construction.
    const exec::RuntimePerturber perturber(perturb);
    DagBuilder oracle_builder(capacity.dims());
    for (const Task& task : dag->tasks()) {
      oracle_builder.add_task(perturber.realized_duration(task, 0),
                              task.demand, task.name);
    }
    for (const Task& task : dag->tasks()) {
      for (TaskId parent : dag->parents(task.id)) {
        oracle_builder.add_edge(parent, task.id);
      }
    }
    const Dag oracle_dag = std::move(oracle_builder).build();
    const Schedule oracle_plan = planner->schedule(oracle_dag, capacity);
    if (const auto why = oracle_plan.validate(oracle_dag, capacity)) {
      std::fprintf(stderr, "job %zu: invalid oracle plan: %s\n", j,
                   why->c_str());
      return 1;
    }
    const Time oracle_makespan = oracle_plan.makespan(oracle_dag);

    // FIFO single-server queue: each job runs alone on the cluster.
    const Time arrival = arrivals[j];
    open_busy = std::max(arrival, open_busy) + open.makespan;
    ladder_busy = std::max(arrival, ladder_busy) + ladder.makespan;
    oracle_busy = std::max(arrival, oracle_busy) + oracle_makespan;
    open_jcts.push_back(open_busy - arrival);
    ladder_jcts.push_back(ladder_busy - arrival);
    oracle_jcts.push_back(oracle_busy - arrival);

    csv.write(jobs[j].job_id, static_cast<long long>(arrival),
              static_cast<long long>(open_jcts.back()),
              static_cast<long long>(ladder_jcts.back()),
              static_cast<long long>(oracle_jcts.back()),
              static_cast<long long>(ladder.stats.local_repairs),
              static_cast<long long>(ladder.stats.researches),
              static_cast<long long>(ladder.stats.speculations));
    std::printf("job %zu/%zu: open %lld  ladder %lld  oracle %lld\n", j + 1,
                jobs.size(), static_cast<long long>(open_jcts.back()),
                static_cast<long long>(ladder_jcts.back()),
                static_cast<long long>(oracle_jcts.back()));
  }

  const JctSummary open_summary = summarize_jct(open_jcts);
  const JctSummary ladder_summary = summarize_jct(ladder_jcts);
  const JctSummary oracle_summary = summarize_jct(oracle_jcts);

  Table table({"mode", "mean JCT", "p99 JCT", "max JCT"});
  table.set_precision(1);
  table.add("open-loop", open_summary.mean,
            static_cast<long long>(open_summary.p99),
            static_cast<long long>(open_summary.max));
  table.add("repair ladder", ladder_summary.mean,
            static_cast<long long>(ladder_summary.p99),
            static_cast<long long>(ladder_summary.max));
  table.add("oracle", oracle_summary.mean,
            static_cast<long long>(oracle_summary.p99),
            static_cast<long long>(oracle_summary.max));
  table.print();
  std::printf(
      "ladder activity: %lld local repairs, %lld re-searches, %lld "
      "speculations (%lld wins)\n",
      static_cast<long long>(ladder_totals.local_repairs),
      static_cast<long long>(ladder_totals.researches),
      static_cast<long long>(ladder_totals.speculations),
      static_cast<long long>(ladder_totals.speculation_wins));
  std::printf("wrote %s\n", csv_path->c_str());

  obs::RunReport report("bench_online_replay");
  obs_flags.finish(report);

  if (!(ladder_summary.mean < open_summary.mean)) {
    std::fprintf(stderr,
                 "FAIL: repair ladder (mean %.1f) does not strictly beat "
                 "open-loop (mean %.1f)\n",
                 ladder_summary.mean, open_summary.mean);
    return 1;
  }
  return 0;
}
