// Ablation: the paper's Eq. 5 backpropagation (exploit the MAX rollout
// value, mean as tiebreaker) vs classic mean-value UCB.  In deterministic
// scheduling — unlike stochastic games — the best rollout through a node is
// an achievable schedule, so max-backprop is the better exploitation signal
// (§IV).

#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "support.h"

int main(int argc, char** argv) {
  using namespace spear;
  using namespace spear::bench;

  Flags flags;
  const auto jobs = flags.define_int("jobs", 8, "number of DAGs");
  const auto tasks = flags.define_int("tasks", 30, "tasks per DAG");
  const auto budget = flags.define_int("budget", 100, "MCTS budget");
  const auto seed = flags.define_int("seed", 13, "workload seed");
  const auto csv_path =
      flags.define_string("csv", "ablation_ucb.csv", "CSV output");
  flags.parse(argc, argv);

  const ResourceVector capacity{1.0, 1.0};
  const auto dags = simulation_workload(static_cast<std::size_t>(*jobs),
                                        static_cast<std::size_t>(*tasks),
                                        static_cast<std::uint64_t>(*seed));

  MctsOptions max_options;
  max_options.initial_budget = *budget;
  max_options.min_budget = std::max<std::int64_t>(*budget / 4, 1);
  max_options.name = "max-backprop (Eq. 5)";
  MctsOptions mean_options = max_options;
  mean_options.max_backprop = false;
  mean_options.name = "mean-backprop (classic)";

  MctsScheduler with_max(max_options);
  MctsScheduler with_mean(mean_options);

  CsvWriter csv(*csv_path);
  csv.write("job", "max_backprop", "mean_backprop");
  std::vector<double> max_makespans, mean_makespans;
  for (std::size_t j = 0; j < dags.size(); ++j) {
    const Time a = validated_makespan(with_max, dags[j], capacity);
    const Time b = validated_makespan(with_mean, dags[j], capacity);
    max_makespans.push_back(static_cast<double>(a));
    mean_makespans.push_back(static_cast<double>(b));
    csv.write(static_cast<long long>(j), static_cast<long long>(a),
              static_cast<long long>(b));
    std::printf("job %zu/%zu done\n", j + 1, dags.size());
  }

  Table table({"variant", "average makespan", "wins"});
  table.add(max_options.name, mean(max_makespans),
            win_rate(max_makespans, mean_makespans));
  table.add(mean_options.name, mean(mean_makespans),
            win_rate(mean_makespans, max_makespans));
  std::printf("\nUCB backpropagation ablation (Eq. 5 max-backprop should be "
              "at least as good as classic mean UCB):\n");
  table.print();
  return 0;
}
