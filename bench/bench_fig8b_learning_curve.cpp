// Fig. 8(b): the DRL learning curve — mean makespan over all training
// trajectories per epoch, with the Tetris and SJF makespans as reference
// lines (paper: 144 examples x 25 tasks, 20 rollouts/example, 7000 epochs;
// the curve decreases steadily and crosses Tetris/SJF around epoch 900).
//
// Scaled default: 12 examples x 15 tasks, 6 rollouts, 30 epochs after a
// short imitation warmup.  --paper restores the full scale (days on one
// core).
//
// Long runs are crash-safe (DESIGN.md §9): --checkpoint-dir rotates binary
// checkpoints every --checkpoint-every epochs, SIGINT/SIGTERM finishes the
// current epoch, flushes a checkpoint plus a run report and exits cleanly,
// and --resume continues an interrupted run with a byte-identical CSV.

#include <cstdio>
#include <vector>

#include "ckpt/manager.h"
#include "ckpt/supervisor.h"
#include "common/flags.h"
#include "common/table.h"
#include "obs/report.h"
#include "rl/imitation.h"
#include "rl/reinforce.h"
#include "sched/sjf.h"
#include "sched/tetris.h"
#include "support.h"

int main(int argc, char** argv) {
  using namespace spear;
  using namespace spear::bench;

  Flags flags;
  const auto paper = flags.define_bool("paper", false, "paper-scale run");
  const auto examples = flags.define_int("examples", 12, "training DAGs");
  const auto tasks = flags.define_int("tasks", 15, "tasks per DAG");
  const auto epochs = flags.define_int("epochs", 30, "REINFORCE epochs");
  const auto rollouts = flags.define_int("rollouts", 6, "rollouts per example");
  const auto imitation_epochs =
      flags.define_int("imitation-epochs", 6, "warmup supervised epochs");
  const auto seed = flags.define_int("seed", 11, "seed");
  const auto csv_path =
      flags.define_string("csv", "fig8b_learning_curve.csv", "CSV output");
  const auto checkpoint_dir = flags.define_string(
      "checkpoint-dir", "", "rotate crash-safe checkpoints in this directory");
  const auto checkpoint_every = flags.define_int(
      "checkpoint-every", 1, "epochs between checkpoints (with a dir)");
  const auto checkpoint_keep =
      flags.define_int("checkpoint-keep", 3, "checkpoint generations kept");
  const auto resume = flags.define_bool(
      "resume", false, "resume from the latest checkpoint in --checkpoint-dir");
  const auto epoch_deadline_ms = flags.define_int(
      "epoch-deadline-ms", 0,
      "watchdog: warn + count when one epoch exceeds this (0 = off)");
  flags.parse(argc, argv);

  const std::size_t n_examples =
      *paper ? 144 : static_cast<std::size_t>(*examples);
  const std::size_t n_tasks = *paper ? 25 : static_cast<std::size_t>(*tasks);
  const std::size_t n_epochs =
      *paper ? 7000 : static_cast<std::size_t>(*epochs);
  const std::size_t n_rollouts =
      *paper ? 20 : static_cast<std::size_t>(*rollouts);

  const bool checkpointing = !checkpoint_dir->empty();
  const std::size_t ckpt_every = *checkpoint_every > 0
                                     ? static_cast<std::size_t>(*checkpoint_every)
                                     : 1;
  std::unique_ptr<ckpt::CheckpointManager> manager;
  if (checkpointing) {
    ckpt::CheckpointManagerOptions mo;
    mo.dir = *checkpoint_dir;
    mo.keep = static_cast<std::size_t>(*checkpoint_keep);
    manager = std::make_unique<ckpt::CheckpointManager>(std::move(mo));
    ckpt::install_signal_handlers();
    // Metrics make ckpt.saves / watchdog counters visible in the exit
    // report.  Default (no --checkpoint-dir) runs keep obs fully disabled,
    // so their output stays byte-identical.
    obs::install_metrics(std::make_shared<obs::MetricsRegistry>());
  }
  ckpt::Watchdog watchdog("fig8b");
  const auto epoch_deadline =
      std::chrono::milliseconds(*epoch_deadline_ms > 0 ? *epoch_deadline_ms
                                                       : 0);

  const ResourceVector capacity{1.0, 1.0};
  const auto dags = simulation_workload(n_examples, n_tasks,
                                        static_cast<std::uint64_t>(*seed));

  // Reference lines: the heuristics the curve must cross.
  auto tetris = make_tetris_scheduler();
  auto sjf = make_sjf_scheduler();
  std::vector<double> tetris_makespans, sjf_makespans;
  for (const auto& dag : dags) {
    tetris_makespans.push_back(
        static_cast<double>(validated_makespan(*tetris, dag, capacity)));
    sjf_makespans.push_back(
        static_cast<double>(validated_makespan(*sjf, dag, capacity)));
  }
  const double tetris_mean = mean(tetris_makespans);
  const double sjf_mean = mean(sjf_makespans);
  std::printf("reference mean makespans: Tetris %.2f, SJF %.2f\n",
              tetris_mean, sjf_mean);

  // §IV pipeline: imitation warmup, then REINFORCE with curve recording.
  Rng rng(static_cast<std::uint64_t>(*seed));
  Policy policy = Policy::make(FeaturizerOptions{}, capacity.dims(), rng);

  std::optional<ckpt::LoadedCheckpoint> loaded;
  if (checkpointing && *resume) {
    loaded = manager->load_latest();
    if (loaded) {
      std::printf("resuming from checkpoint generation %llu (%s, epoch %llu)\n",
                  static_cast<unsigned long long>(loaded->generation),
                  loaded->state.phase.c_str(),
                  static_cast<unsigned long long>(loaded->state.next_epoch));
    } else {
      std::printf("no usable checkpoint in %s; starting fresh\n",
                  checkpoint_dir->c_str());
    }
  }

  obs::RunReport report("fig8b_learning_curve");
  report.set("examples", static_cast<std::int64_t>(n_examples));
  report.set("tasks", static_cast<std::int64_t>(n_tasks));
  report.set("epochs", static_cast<std::int64_t>(n_epochs));
  report.set("rollouts", static_cast<std::int64_t>(n_rollouts));
  report.set("seed", *seed);
  report.set("resumed", static_cast<bool>(loaded));

  // Flushes the current trainer state + run report; the single exit path
  // for both graceful shutdown and normal completion.
  const auto flush_checkpoint = [&](const ckpt::TrainerState& state,
                                    bool stopped_early) {
    if (!checkpointing) return;
    manager->save(state);
    report.set("stopped_early", stopped_early);
    report.set("phase", state.phase);
    report.set("epochs_completed", static_cast<std::int64_t>(state.next_epoch));
    report.set("watchdog_overruns",
               static_cast<std::int64_t>(watchdog.overruns()));
    const std::string report_path = *checkpoint_dir + "/run_report.json";
    if (obs::metrics()) {
      const obs::MetricsSnapshot snapshot = obs::metrics()->snapshot();
      report.write(report_path, &snapshot);
    } else {
      report.write(report_path);
    }
    std::printf("wrote %s\n", report_path.c_str());
  };

  // Stage 1: imitation warmup — skipped entirely when resuming into
  // REINFORCE (the checkpoint already contains the warmed-up weights and
  // the Rng state that followed them).
  const bool skip_imitation =
      loaded && loaded->state.phase == ckpt::kPhaseReinforce;
  if (!skip_imitation) {
    ImitationOptions imitation;
    imitation.epochs = static_cast<std::size_t>(*imitation_epochs);
    auto demos = collect_cp_demonstrations(policy, dags, capacity,
                                           imitation.jump_on_process);
    ImitationTrainer warmup(policy, std::move(demos), imitation, rng);
    if (loaded && loaded->state.phase == ckpt::kPhaseImitation) {
      warmup.restore(loaded->state);
    }
    while (!warmup.done()) {
      if (ckpt::stop_requested()) {
        std::printf("stop requested; checkpointing imitation at epoch %zu\n",
                    warmup.next_epoch());
        flush_checkpoint(warmup.checkpoint_state(), /*stopped_early=*/true);
        return 0;
      }
      ckpt::WatchdogScope scope(
          watchdog, epoch_deadline,
          "imitation epoch " + std::to_string(warmup.next_epoch()));
      warmup.run_epoch();
      if (checkpointing && (warmup.next_epoch() % ckpt_every == 0)) {
        manager->save(warmup.checkpoint_state());
      }
    }
  }

  CsvWriter csv(*csv_path);
  csv.write("epoch", "mean_makespan", "tetris", "sjf");
  ReinforceOptions rl;
  rl.epochs = n_epochs;
  rl.rollouts_per_example = n_rollouts;
  ReinforceTrainer trainer(policy, dags, capacity, rl, rng);
  if (skip_imitation) trainer.restore(loaded->state);

  const auto emit_row = [&](std::size_t epoch, double makespan) {
    csv.write(static_cast<long long>(epoch), makespan, tetris_mean, sjf_mean);
    if (epoch % 5 == 0 || epoch + 1 == n_epochs) {
      std::printf("epoch %4zu  mean makespan %8.2f  (Tetris %.2f, SJF "
                  "%.2f)\n",
                  epoch, makespan, tetris_mean, sjf_mean);
    }
  };
  // Rows for epochs restored from the checkpoint, so a resumed run's CSV is
  // byte-identical to an uninterrupted one.
  for (std::size_t e = 0; e < trainer.result().epoch_mean_makespan.size();
       ++e) {
    emit_row(e, trainer.result().epoch_mean_makespan[e]);
  }

  while (!trainer.done()) {
    if (ckpt::stop_requested()) {
      std::printf("stop requested; checkpointing REINFORCE at epoch %zu\n",
                  trainer.next_epoch());
      flush_checkpoint(trainer.checkpoint_state(), /*stopped_early=*/true);
      return 0;
    }
    const std::size_t epoch = trainer.next_epoch();
    ckpt::WatchdogScope scope(watchdog, epoch_deadline,
                              "REINFORCE epoch " + std::to_string(epoch));
    const double makespan = trainer.run_epoch();
    emit_row(epoch, makespan);
    if (checkpointing && (trainer.next_epoch() % ckpt_every == 0 ||
                          trainer.done())) {
      manager->save(trainer.checkpoint_state());
    }
  }
  const auto result = trainer.finalize();
  flush_checkpoint(trainer.checkpoint_state(), /*stopped_early=*/false);

  const auto& curve = result.epoch_mean_makespan;
  Table table({"metric", "value"});
  table.add("first-epoch mean makespan", curve.front());
  table.add("last-epoch mean makespan", curve.back());
  table.add("Tetris reference", tetris_mean);
  table.add("SJF reference", sjf_mean);
  std::size_t crossed = curve.size();
  for (std::size_t e = 0; e < curve.size(); ++e) {
    if (curve[e] < std::min(tetris_mean, sjf_mean)) {
      crossed = e;
      break;
    }
  }
  table.add("epoch crossing both references",
            crossed < curve.size() ? std::to_string(crossed) : "not yet");
  std::printf("\nLearning curve summary (Fig. 8b — the curve should fall "
              "with epochs and eventually cross the heuristics):\n");
  table.print();
  std::printf("wrote %s\n", csv_path->c_str());
  return 0;
}
