// Fig. 8(b): the DRL learning curve — mean makespan over all training
// trajectories per epoch, with the Tetris and SJF makespans as reference
// lines (paper: 144 examples x 25 tasks, 20 rollouts/example, 7000 epochs;
// the curve decreases steadily and crosses Tetris/SJF around epoch 900).
//
// Scaled default: 12 examples x 15 tasks, 6 rollouts, 30 epochs after a
// short imitation warmup.  --paper restores the full scale (days on one
// core).

#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "rl/imitation.h"
#include "rl/reinforce.h"
#include "sched/sjf.h"
#include "sched/tetris.h"
#include "support.h"

int main(int argc, char** argv) {
  using namespace spear;
  using namespace spear::bench;

  Flags flags;
  const auto paper = flags.define_bool("paper", false, "paper-scale run");
  const auto examples = flags.define_int("examples", 12, "training DAGs");
  const auto tasks = flags.define_int("tasks", 15, "tasks per DAG");
  const auto epochs = flags.define_int("epochs", 30, "REINFORCE epochs");
  const auto rollouts = flags.define_int("rollouts", 6, "rollouts per example");
  const auto imitation_epochs =
      flags.define_int("imitation-epochs", 6, "warmup supervised epochs");
  const auto seed = flags.define_int("seed", 11, "seed");
  const auto csv_path =
      flags.define_string("csv", "fig8b_learning_curve.csv", "CSV output");
  flags.parse(argc, argv);

  const std::size_t n_examples =
      *paper ? 144 : static_cast<std::size_t>(*examples);
  const std::size_t n_tasks = *paper ? 25 : static_cast<std::size_t>(*tasks);
  const std::size_t n_epochs =
      *paper ? 7000 : static_cast<std::size_t>(*epochs);
  const std::size_t n_rollouts =
      *paper ? 20 : static_cast<std::size_t>(*rollouts);

  const ResourceVector capacity{1.0, 1.0};
  const auto dags = simulation_workload(n_examples, n_tasks,
                                        static_cast<std::uint64_t>(*seed));

  // Reference lines: the heuristics the curve must cross.
  auto tetris = make_tetris_scheduler();
  auto sjf = make_sjf_scheduler();
  std::vector<double> tetris_makespans, sjf_makespans;
  for (const auto& dag : dags) {
    tetris_makespans.push_back(
        static_cast<double>(validated_makespan(*tetris, dag, capacity)));
    sjf_makespans.push_back(
        static_cast<double>(validated_makespan(*sjf, dag, capacity)));
  }
  const double tetris_mean = mean(tetris_makespans);
  const double sjf_mean = mean(sjf_makespans);
  std::printf("reference mean makespans: Tetris %.2f, SJF %.2f\n",
              tetris_mean, sjf_mean);

  // §IV pipeline: imitation warmup, then REINFORCE with curve recording.
  Rng rng(static_cast<std::uint64_t>(*seed));
  Policy policy = Policy::make(FeaturizerOptions{}, capacity.dims(), rng);
  ImitationOptions imitation;
  imitation.epochs = static_cast<std::size_t>(*imitation_epochs);
  pretrain_on_cp(policy, dags, capacity, imitation, rng);

  CsvWriter csv(*csv_path);
  csv.write("epoch", "mean_makespan", "tetris", "sjf");
  ReinforceOptions rl;
  rl.epochs = n_epochs;
  rl.rollouts_per_example = n_rollouts;
  const auto result = train_reinforce(
      policy, dags, capacity, rl, rng,
      [&](std::size_t epoch, double makespan) {
        csv.write(static_cast<long long>(epoch), makespan, tetris_mean,
                  sjf_mean);
        if (epoch % 5 == 0 || epoch + 1 == n_epochs) {
          std::printf("epoch %4zu  mean makespan %8.2f  (Tetris %.2f, SJF "
                      "%.2f)\n",
                      epoch, makespan, tetris_mean, sjf_mean);
        }
      });

  const auto& curve = result.epoch_mean_makespan;
  Table table({"metric", "value"});
  table.add("first-epoch mean makespan", curve.front());
  table.add("last-epoch mean makespan", curve.back());
  table.add("Tetris reference", tetris_mean);
  table.add("SJF reference", sjf_mean);
  std::size_t crossed = curve.size();
  for (std::size_t e = 0; e < curve.size(); ++e) {
    if (curve[e] < std::min(tetris_mean, sjf_mean)) {
      crossed = e;
      break;
    }
  }
  table.add("epoch crossing both references",
            crossed < curve.size() ? std::to_string(crossed) : "not yet");
  std::printf("\nLearning curve summary (Fig. 8b — the curve should fall "
              "with epochs and eventually cross the heuristics):\n");
  table.print();
  std::printf("wrote %s\n", csv_path->c_str());
  return 0;
}
