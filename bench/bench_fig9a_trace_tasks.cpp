// Fig. 9(a): the production trace's task-count distributions — number of
// map and reduce tasks per job (paper: 99 Hive MapReduce jobs, medians 14
// maps / 17 reduces, maxima 29 / 38; jobs with <= 5 maps or <= 5 reduces
// filtered out).  Our trace is the synthetic statistical match documented
// in DESIGN.md.

#include <cstdio>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "support.h"
#include "trace/trace.h"

int main(int argc, char** argv) {
  using namespace spear;
  using namespace spear::bench;

  Flags flags;
  const auto seed = flags.define_int("seed", 3, "trace seed");
  const auto csv_prefix =
      flags.define_string("csv", "fig9a_trace_tasks", "CSV output prefix");
  flags.parse(argc, argv);

  Rng rng(static_cast<std::uint64_t>(*seed));
  const auto jobs = generate_trace({}, rng);

  std::vector<double> map_counts, reduce_counts;
  for (const auto& job : jobs) {
    map_counts.push_back(static_cast<double>(job.num_map()));
    reduce_counts.push_back(static_cast<double>(job.num_reduce()));
  }
  const auto stats = compute_trace_stats(jobs);

  Table table({"stage", "median tasks", "max tasks", "min tasks"});
  table.add("map", stats.median_map_tasks,
            static_cast<long long>(stats.max_map_tasks), min_of(map_counts));
  table.add("reduce", stats.median_reduce_tasks,
            static_cast<long long>(stats.max_reduce_tasks),
            min_of(reduce_counts));
  std::printf("Trace task counts over %zu jobs (Fig. 9a — paper: medians "
              "14 / 17, maxima 29 / 38, minimum > 5):\n",
              jobs.size());
  table.print();

  write_cdf_csv(*csv_prefix + "_map.csv", "map_tasks", map_counts);
  write_cdf_csv(*csv_prefix + "_reduce.csv", "reduce_tasks", reduce_counts);
  return 0;
}
