// Ablation: what guides MCTS expansion ordering and rollouts?
//   random    — classic MCTS (the paper's pure-MCTS baseline)
//   heuristic — CP x Tetris blended scores (no learning)
//   DRL       — the trained policy (= Spear)
// All three get the same small budget, so any quality difference is pure
// guidance quality — the core claim behind §III-A ("focus the budget on
// promising branches").

#include <cstdio>
#include <memory>
#include <vector>

#include "common/flags.h"
#include "common/table.h"
#include "support.h"

int main(int argc, char** argv) {
  using namespace spear;
  using namespace spear::bench;

  Flags flags;
  const auto jobs = flags.define_int("jobs", 6, "number of DAGs");
  const auto tasks = flags.define_int("tasks", 30, "tasks per DAG");
  const auto budget = flags.define_int("budget", 40, "shared (small) budget");
  const auto seed = flags.define_int("seed", 12, "workload seed");
  const auto policy_path = flags.define_string(
      "policy", "bench_policy.txt", "policy cache file (empty = retrain)");
  const auto csv_path =
      flags.define_string("csv", "ablation_guidance.csv", "CSV output");
  flags.parse(argc, argv);

  const ResourceVector capacity{1.0, 1.0};
  const auto dags = simulation_workload(static_cast<std::size_t>(*jobs),
                                        static_cast<std::size_t>(*tasks),
                                        static_cast<std::uint64_t>(*seed));

  SpearTrainingOptions training;
  auto policy = get_or_train_policy(*policy_path, training);

  MctsOptions base;
  base.initial_budget = *budget;
  base.min_budget = std::max<std::int64_t>(*budget / 4, 1);

  std::vector<std::unique_ptr<MctsScheduler>> schedulers;
  {
    MctsOptions o = base;
    o.name = "MCTS/random";
    schedulers.push_back(std::make_unique<MctsScheduler>(o, nullptr));
  }
  {
    MctsOptions o = base;
    o.name = "MCTS/heuristic";
    schedulers.push_back(std::make_unique<MctsScheduler>(
        o, std::make_shared<HeuristicDecisionPolicy>()));
  }
  {
    MctsOptions o = base;
    o.name = "Spear(DRL)";
    schedulers.push_back(std::make_unique<MctsScheduler>(
        o, std::make_shared<DrlDecisionPolicy>(policy)));
  }

  CsvWriter csv(*csv_path);
  csv.write("job", "random", "heuristic", "drl");

  std::vector<std::vector<double>> makespans(schedulers.size());
  for (std::size_t j = 0; j < dags.size(); ++j) {
    std::vector<double> row;
    for (std::size_t s = 0; s < schedulers.size(); ++s) {
      const Time m = validated_makespan(*schedulers[s], dags[j], capacity);
      makespans[s].push_back(static_cast<double>(m));
      row.push_back(static_cast<double>(m));
    }
    csv.write(static_cast<long long>(j), row[0], row[1], row[2]);
    std::printf("job %zu/%zu done\n", j + 1, dags.size());
  }

  Table table({"guidance", "average makespan", "wins vs random"});
  for (std::size_t s = 0; s < schedulers.size(); ++s) {
    table.add(schedulers[s]->name(), mean(makespans[s]),
              win_rate(makespans[s], makespans[0]));
  }
  std::printf("\nGuidance ablation at shared budget %lld (informed guidance "
              "should dominate random at small budgets):\n",
              static_cast<long long>(*budget));
  table.print();
  return 0;
}
